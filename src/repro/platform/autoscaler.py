"""A Knative-KPA-style autoscaler: demand-driven container provisioning.

The scheduler already creates containers on demand (paying cold starts
inline).  The autoscaler removes those cold starts from the critical path:
it observes scheduler activity (every acquire/release) and pre-provisions
warm containers toward ``ceil(demand * headroom)``, Knative's
concurrency-targeting behaviour — the reason Fig 12's lower row shows the
slower approaches *gradually* acquiring more pods under a fixed rate.

The design is event-driven rather than a polling process, so an idle
autoscaler never keeps the simulation's event queue alive; sustained-idle
scale-down happens on the next activity or an explicit :meth:`reap`.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Tuple

from repro.platform.container import STATE_IDLE, Container
from repro.platform.dag import Workflow
from repro.platform.planner import VmPlan
from repro.platform.scheduler import Scheduler
from repro.sim.engine import Engine
from repro.units import seconds


class Autoscaler:
    """Watches one deployed workflow and pre-provisions containers."""

    def __init__(self, engine: Engine, scheduler: Scheduler,
                 workflow: Workflow, plan: VmPlan,
                 headroom: float = 1.1,
                 idle_ttl_ns: int = seconds(5),
                 mechanism: str = "prewarm"):
        if mechanism not in ("prewarm", "fork"):
            raise ValueError(f"unknown scale-up mechanism {mechanism!r}")
        self.engine = engine
        self.scheduler = scheduler
        self.workflow = workflow
        self.plan = plan
        self.headroom = headroom
        self.idle_ttl_ns = idle_ttl_ns
        #: how new capacity materializes: ``prewarm`` boots a full
        #: container; ``fork`` remote-forks a running one when the
        #: scheduler has a usable source (falling back to a boot)
        self.mechanism = mechanism
        self._last_busy: Dict[str, int] = defaultdict(int)
        self.provisioned = 0
        self.scaled_down = 0
        self._attached = False

    # -- lifecycle ---------------------------------------------------------------

    def attach(self) -> "Autoscaler":
        """Subscribe to scheduler activity."""
        if not self._attached:
            self.scheduler.listeners.append(self._on_activity)
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.scheduler.listeners.remove(self._on_activity)
            self._attached = False

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready view of scaling activity and current coverage."""
        per_function = {}
        for spec in self.workflow.functions:
            alive = self._pools(spec.name)
            per_function[spec.name] = {
                "width": spec.width,
                "alive": len(alive),
                "busy": sum(1 for _k, c in alive
                            if c.state != STATE_IDLE),
                "last_busy_ns": self._last_busy[spec.name],
            }
        return {
            "workflow": self.workflow.name,
            "mechanism": self.mechanism,
            "headroom": self.headroom,
            "idle_ttl_ns": self.idle_ttl_ns,
            "provisioned": self.provisioned,
            "scaled_down": self.scaled_down,
            "attached": self._attached,
            "functions": per_function,
        }

    # -- demand sampling -----------------------------------------------------------

    def _pools(self, function: str) -> List[Tuple[tuple, Container]]:
        out = []
        for key, pool in self.scheduler._pool.items():
            if key[0] == self.workflow.name and key[1] == function:
                out.extend((key, c) for c in pool)
        return out

    def _on_activity(self, container: Container) -> None:
        if container.slot is None:  # pragma: no cover - defensive
            return
        name = container.spec.name
        if not any(s.name == name for s in self.workflow.functions):
            return
        self._evaluate(name)

    def _evaluate(self, function: str) -> None:
        now = self.engine.now
        alive = self._pools(function)
        demand = sum(1 for _k, c in alive if c.state != STATE_IDLE)
        spec = self.workflow.spec(function)
        if demand > 0:
            self._last_busy[function] = now
            desired = min(spec.width, math.ceil(demand * self.headroom))
            for _ in range(desired - len(alive)):
                if not self._provision_one(function):
                    break
        elif now - self._last_busy[function] > self.idle_ttl_ns:
            self._reap_function(function, alive)

    def reap(self) -> int:
        """Explicit sustained-idle scale-down pass; returns drops."""
        before = self.scaled_down
        now = self.engine.now
        for spec in self.workflow.functions:
            if now - self._last_busy[spec.name] > self.idle_ttl_ns:
                self._reap_function(spec.name, self._pools(spec.name))
        return self.scaled_down - before

    def _reap_function(self, function: str, alive) -> None:
        for key, container in alive:
            if container.state == STATE_IDLE:
                self.scheduler._destroy(key, container)
                self.scaled_down += 1

    # -- provisioning ------------------------------------------------------------------

    def _provision_one(self, function: str) -> bool:
        """Create one warm container for the least-covered slot.

        The cold start happens *now* but concurrently with user traffic:
        by the time an invocation needs the slot, the container is warm.
        """
        spec = self.workflow.spec(function)
        covered: Dict[int, int] = defaultdict(int)
        for (_wf, _fn, idx), _c in self._pools(function):
            covered[idx] += 1
        index = min(range(spec.width), key=lambda i: covered[i])
        machine = self.scheduler._least_loaded_machine()
        if machine is None:
            return False
        key = (self.workflow.name, spec.name, index)
        self.scheduler._per_machine_count[machine.mac_addr] += 1
        container = self._materialize(key, machine, spec, index)
        container.cached_since = self.engine.now
        self.scheduler._pool[key].append(container)
        self.scheduler._signal_capacity()
        self.provisioned += 1
        return True

    def _materialize(self, key, machine, spec, index) -> Container:
        """Build the new pod: a remote-forked child when the fork
        mechanism is on and a same-slot source exists, else a full boot."""
        slot = self.plan.slot(spec.name, index)
        manager = self.scheduler.fork_manager
        if self.mechanism == "fork" and manager is not None \
                and manager.policy.allows_fork():
            source = manager.source_for(key, self.scheduler._pool[key])
            if source is not None:
                from repro.errors import ForkFailed
                from repro.fork.remote import remote_fork
                try:
                    child = remote_fork(source, machine, spec, slot,
                                        policy=manager.policy)
                except ForkFailed:
                    pass
                else:
                    manager.prewarm_forks += 1
                    return child
        return Container(machine, spec, slot)
