"""repro — a reproduction of RMMAP (EuroSys 2024).

"Serialization/Deserialization-free State Transfer in Serverless
Workflows": an OS primitive that maps a remote function container's memory
into a local one over RDMA so serverless functions pass pointers instead
of pickled bytes, rebuilt here as a fully-functional discrete-event
simulated datacenter in pure Python.

Layers (bottom-up): :mod:`repro.sim` (event engine), :mod:`repro.mem`
(pages/PTEs/VMAs/CoW), :mod:`repro.net` (RDMA/RPC), :mod:`repro.kernel`
(the RMMAP syscalls), :mod:`repro.runtime` (managed heap + serializer +
hybrid GC), :mod:`repro.transfer` (the five transports),
:mod:`repro.platform` (Knative-equivalent), :mod:`repro.workloads`
(FINRA / ML / WordCount), :mod:`repro.analysis` and :mod:`repro.bench`
(experiments).  See DESIGN.md and EXPERIMENTS.md.
"""

__version__ = "1.0.0"
