"""Deterministic open-loop arrival processes and per-tenant traffic mixes.

Three arrival-process families cover the load shapes the serverless
literature cares about (TrEnv-X's multi-tenant sharing pressure,
Roadrunner's load-mix sensitivity):

* :class:`PoissonArrivals` — homogeneous Poisson at ``rate_rps``;
* :class:`DiurnalArrivals` — a non-homogeneous Poisson process whose
  rate follows a sinusoid (day/night traffic), sampled by thinning
  against the peak rate;
* :class:`BurstyArrivals` — a Markov-modulated on/off process
  (exponential dwell times in a high-rate and a low-rate state), the
  classic model for flash crowds.

All three draw exclusively from the :class:`~repro.sim.rng.SeededRng`
handed to :meth:`ArrivalProcess.arrivals`, so a fixed seed replays the
exact arrival timeline.  Processes are *stateless* — per-run state lives
inside the generator — so one spec object can drive many runs without
leaking history between them.

A :class:`TrafficMix` weights ``(workload, transport)`` pairs; each
arrival picks one pair from the mix with its own rng stream.  A
:class:`TenantSpec` bundles a tenant's arrivals, mix, and admission
quota into the unit :func:`repro.fleet.runner.run_fleet` consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.sim.rng import SeededRng

#: One second in simulated nanoseconds.
_SECOND_NS = 1_000_000_000


class ArrivalProcess:
    """Base class: a seeded generator of absolute arrival timestamps."""

    kind = "?"

    def mean_rate_rps(self) -> float:
        """Long-run average arrival rate (requests per second)."""
        raise NotImplementedError

    def arrivals(self, rng: SeededRng, start_ns: int,
                 end_ns: int) -> Iterator[int]:
        """Yield absolute arrival times in ``[start_ns, end_ns)``.

        Consumes only *rng*; never reads a clock or global state.
        """
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at a fixed rate."""

    kind = "poisson"

    def __init__(self, rate_rps: float):
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        self.rate_rps = float(rate_rps)

    def mean_rate_rps(self) -> float:
        return self.rate_rps

    def arrivals(self, rng: SeededRng, start_ns: int,
                 end_ns: int) -> Iterator[int]:
        mean_gap_ns = _SECOND_NS / self.rate_rps
        t = start_ns
        while True:
            t += rng.exponential_ns(mean_gap_ns)
            if t >= end_ns:
                return
            yield t

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "rate_rps": self.rate_rps}


class DiurnalArrivals(ArrivalProcess):
    """Sinusoid-modulated (non-homogeneous Poisson) arrivals.

    The instantaneous rate is::

        rate(t) = peak_rps * (floor + (1 - floor) *
                              (0.5 + 0.5 * sin(2*pi*(t/period + phase))))

    so it oscillates between ``peak_rps * floor`` (the overnight trough)
    and ``peak_rps``.  Sampling uses thinning: candidate arrivals are
    drawn at the peak rate and accepted with probability
    ``rate(t) / peak_rps``, which is exact for non-homogeneous Poisson
    processes and stays a pure function of the rng draws.
    """

    kind = "diurnal"

    def __init__(self, peak_rps: float, period_s: float = 10.0,
                 floor: float = 0.2, phase: float = 0.0):
        if peak_rps <= 0 or period_s <= 0:
            raise ValueError("peak_rps and period_s must be positive")
        if not 0.0 <= floor <= 1.0:
            raise ValueError("floor must be in [0, 1]")
        self.peak_rps = float(peak_rps)
        self.period_s = float(period_s)
        self.floor = float(floor)
        self.phase = float(phase)

    def mean_rate_rps(self) -> float:
        # the sinusoid averages to 0.5, so the mean relative rate is
        # floor + (1 - floor) / 2
        return self.peak_rps * (self.floor + (1.0 - self.floor) * 0.5)

    def relative_rate(self, t_ns: int) -> float:
        """``rate(t) / peak_rps``, in ``[floor, 1]``."""
        cycles = t_ns / (self.period_s * _SECOND_NS) + self.phase
        wave = 0.5 + 0.5 * math.sin(2.0 * math.pi * cycles)
        return self.floor + (1.0 - self.floor) * wave

    def arrivals(self, rng: SeededRng, start_ns: int,
                 end_ns: int) -> Iterator[int]:
        mean_gap_ns = _SECOND_NS / self.peak_rps
        t = start_ns
        while True:
            t += rng.exponential_ns(mean_gap_ns)
            if t >= end_ns:
                return
            if rng.py.random() <= self.relative_rate(t):
                yield t

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "peak_rps": self.peak_rps,
                "period_s": self.period_s, "floor": self.floor,
                "phase": self.phase}


class BurstyArrivals(ArrivalProcess):
    """Markov-modulated on/off arrivals (a 2-state MMPP).

    The process dwells exponentially long in an *on* state (arrivals at
    ``rate_on_rps``) and an *off* state (``rate_off_rps``, possibly 0),
    switching between them forever.  Because exponential inter-arrivals
    are memoryless, discarding the candidate arrival that crosses a
    state switch and redrawing in the new state samples the exact MMPP.
    """

    kind = "bursty"

    def __init__(self, rate_on_rps: float, rate_off_rps: float = 0.0,
                 mean_on_s: float = 1.0, mean_off_s: float = 4.0,
                 start_on: bool = True):
        if rate_on_rps <= 0:
            raise ValueError("rate_on_rps must be positive")
        if rate_off_rps < 0:
            raise ValueError("rate_off_rps must be non-negative")
        if mean_on_s <= 0 or mean_off_s <= 0:
            raise ValueError("dwell times must be positive")
        self.rate_on_rps = float(rate_on_rps)
        self.rate_off_rps = float(rate_off_rps)
        self.mean_on_s = float(mean_on_s)
        self.mean_off_s = float(mean_off_s)
        self.start_on = bool(start_on)

    def mean_rate_rps(self) -> float:
        total = self.mean_on_s + self.mean_off_s
        return (self.rate_on_rps * self.mean_on_s
                + self.rate_off_rps * self.mean_off_s) / total

    def arrivals(self, rng: SeededRng, start_ns: int,
                 end_ns: int) -> Iterator[int]:
        on = self.start_on
        t = start_ns
        switch = t + rng.exponential_ns(
            (self.mean_on_s if on else self.mean_off_s) * _SECOND_NS)
        while t < end_ns:
            rate = self.rate_on_rps if on else self.rate_off_rps
            if rate <= 0.0:
                t = switch
            else:
                gap = rng.exponential_ns(_SECOND_NS / rate)
                if t + gap < switch:
                    t += gap
                    if t >= end_ns:
                        return
                    yield t
                    continue
                t = switch
            on = not on
            switch = t + rng.exponential_ns(
                (self.mean_on_s if on else self.mean_off_s) * _SECOND_NS)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "rate_on_rps": self.rate_on_rps,
                "rate_off_rps": self.rate_off_rps,
                "mean_on_s": self.mean_on_s,
                "mean_off_s": self.mean_off_s,
                "start_on": self.start_on}


#: ``(workload, transport)`` — the unit a mix weights.
MixEntry = Tuple[str, str]


class TrafficMix:
    """A weighted choice over ``(workload, transport)`` pairs.

    ``entries`` maps pairs to positive weights; :meth:`pick` draws one
    pair per arrival using the caller's rng stream, so a tenant's mix
    sequence is as isolated as its arrival sequence.
    """

    def __init__(self, entries: Sequence[Tuple[MixEntry, float]]):
        if not entries:
            raise ValueError("a TrafficMix needs at least one entry")
        cleaned: List[Tuple[MixEntry, float]] = []
        for (workload, transport), weight in entries:
            if weight <= 0:
                raise ValueError(
                    f"weight for {(workload, transport)!r} must be "
                    f"positive, got {weight}")
            cleaned.append(((str(workload), str(transport)),
                            float(weight)))
        self.entries = cleaned
        self._total = sum(w for _, w in cleaned)

    @classmethod
    def uniform(cls, workloads: Sequence[str],
                transports: Sequence[str]) -> "TrafficMix":
        """Every ``workloads x transports`` pair, equally weighted."""
        return cls([((w, t), 1.0) for w in workloads for t in transports])

    @classmethod
    def single(cls, workload: str, transport: str) -> "TrafficMix":
        return cls([((workload, transport), 1.0)])

    def pairs(self) -> List[MixEntry]:
        """The distinct ``(workload, transport)`` pairs, mix order."""
        return [pair for pair, _ in self.entries]

    def pick(self, rng: SeededRng) -> MixEntry:
        r = rng.py.random() * self._total
        acc = 0.0
        for pair, weight in self.entries:
            acc += weight
            if r <= acc:
                return pair
        return self.entries[-1][0]  # float round-off guard

    def to_dict(self) -> Dict[str, Any]:
        return {"entries": [
            {"workload": w, "transport": t, "weight": weight}
            for (w, t), weight in self.entries]}


@dataclass
class TenantSpec:
    """One tenant: arrivals + mix + admission quota.

    ``admission_rps`` of ``None`` disables admission control for the
    tenant (every arrival is admitted); otherwise a token bucket of that
    sustained rate and ``admission_burst`` capacity guards the tenant.
    """

    name: str
    arrivals: ArrivalProcess
    mix: TrafficMix
    admission_rps: Optional[float] = None
    admission_burst: float = field(default=10.0)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "arrivals": self.arrivals.to_dict(),
                "mix": self.mix.to_dict(),
                "admission_rps": self.admission_rps,
                "admission_burst": self.admission_burst}


#: The four evaluated workloads (matches repro.bench.figures_workflow).
DEFAULT_WORKLOADS = ("finra", "ml-prediction", "ml-training", "wordcount")


def default_tenants(n_tenants: int, base_rate_rps: float = 50.0,
                    transports: Optional[Sequence[str]] = None,
                    admission_headroom: float = 2.0) -> List[TenantSpec]:
    """A varied standard fleet: *n_tenants* tenants cycling through the
    three arrival families and through single-pair mixes spanning the
    4 workloads x the registered transports.

    Tenant ``i`` runs workload ``i mod 4`` over transport ``i mod T``
    at ``base_rate_rps * (1 + i/4)``, so rates, mixes and arrival shapes
    all differ across the fleet.  Admission buckets are sized at
    ``admission_headroom`` times the tenant's mean rate — loose enough
    that steady traffic passes, tight enough that bursts are clipped.
    """
    if transports is None:
        from repro.transfer.registry import list_transports
        transports = list_transports()
    tenants: List[TenantSpec] = []
    for i in range(n_tenants):
        rate = base_rate_rps * (1.0 + i / 4.0)
        shape = i % 3
        if shape == 0:
            arrivals: ArrivalProcess = PoissonArrivals(rate)
        elif shape == 1:
            arrivals = DiurnalArrivals(peak_rps=rate * 1.5, period_s=8.0,
                                       floor=0.25, phase=i / 7.0)
        else:
            arrivals = BurstyArrivals(rate_on_rps=rate * 3.0,
                                      rate_off_rps=rate * 0.2,
                                      mean_on_s=0.5, mean_off_s=1.0,
                                      start_on=(i % 2 == 0))
        workload = DEFAULT_WORKLOADS[i % len(DEFAULT_WORKLOADS)]
        transport = transports[i % len(transports)]
        tenants.append(TenantSpec(
            name=f"tenant-{i:02d}",
            arrivals=arrivals,
            mix=TrafficMix.single(workload, transport),
            admission_rps=arrivals.mean_rate_rps() * admission_headroom,
            admission_burst=max(10.0, rate / 2.0)))
    return tenants
