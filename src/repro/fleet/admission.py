"""Admission control: per-tenant token buckets and typed rejections.

Admission happens *before* an invocation exists: a rejected request
never touches a scheduler, never acquires a pod, and costs zero
simulated time.  The controller is a pure function of the simulated
clock — bucket refill is computed from the timestamp of each decision,
so the same request timeline always produces the same admit/reject
sequence.

Rejections are typed (:data:`REJECT_RATE_LIMIT`,
:data:`REJECT_QUEUE_FULL`, :data:`REJECT_SHARD_DOWN`) so availability
accounting can distinguish *refused* work from *failed* work while the
fleet monitor folds both into the same SLO denominator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.telemetry import current as _telemetry

#: Layer for admission-control utilization gauges (token levels,
#: rejection rates) — the saturation-timeline feed for triage.
ADMISSION_LAYER = "fleet.admission"

#: The tenant's token bucket was empty — sustained over-rate traffic.
REJECT_RATE_LIMIT = "rate-limit"
#: The target shard's wait queue was at capacity.
REJECT_QUEUE_FULL = "queue-full"
#: No live shard could serve the tenant.
REJECT_SHARD_DOWN = "shard-down"


@dataclass(frozen=True)
class Rejection:
    """One typed admission-control rejection event."""

    ts_ns: int
    tenant: str
    reason: str
    shard: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"ts_ns": self.ts_ns, "tenant": self.tenant,
                "reason": self.reason, "shard": self.shard}


class TokenBucket:
    """A token bucket refilled as a pure function of simulated time.

    ``rate_per_s`` tokens accrue per simulated second up to ``burst``;
    :meth:`try_take` refills from the elapsed nanoseconds since the last
    decision and then spends, so the admit/reject outcome depends only
    on the decision timeline, never on wall-clock or call order across
    buckets.
    """

    __slots__ = ("rate_per_s", "burst", "tokens", "_last_ns")

    def __init__(self, rate_per_s: float, burst: float):
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1 token")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self.tokens = float(burst)  # a fresh bucket starts full
        self._last_ns = 0

    def refill(self, now_ns: int) -> None:
        if now_ns <= self._last_ns:
            return
        self.tokens = min(
            self.burst,
            self.tokens + (now_ns - self._last_ns) * self.rate_per_s / 1e9)
        self._last_ns = now_ns

    def try_take(self, now_ns: int, n: float = 1.0) -> bool:
        """Spend *n* tokens at *now_ns*; ``False`` leaves the bucket
        untouched (a rejected request costs no tokens)."""
        self.refill(now_ns)
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False


class AdmissionController:
    """Per-tenant token buckets plus a typed rejection log.

    Tenants without a configured bucket are always admitted (admission
    is opt-in per tenant).  The controller only decides *rate-limit*
    rejections itself; shard-level reasons (queue-full, shard-down) are
    recorded through :meth:`note_rejection` by the sharding layer so one
    object holds the complete rejection ledger.
    """

    #: Rejection log cap — counters stay exact beyond it.
    MAX_LOGGED = 1000

    def __init__(self):
        self._buckets: Dict[str, TokenBucket] = {}
        self.admitted = 0
        self.rejections: List[Rejection] = []
        #: exact counts per (tenant, reason), unaffected by the log cap
        self.rejected_counts: Dict[Tuple[str, str], int] = {}

    def configure(self, tenant: str, rate_per_s: float,
                  burst: float) -> TokenBucket:
        bucket = TokenBucket(rate_per_s, burst)
        self._buckets[tenant] = bucket
        hub = _telemetry()
        if hub is not None:
            # milli-token fixed point: gauges are integers by contract
            hub.gauge(tenant, ADMISSION_LAYER, "tokens.burst_milli",
                      int(bucket.burst * 1000))
        return bucket

    def bucket(self, tenant: str) -> Optional[TokenBucket]:
        return self._buckets.get(tenant)

    def admit(self, tenant: str, now_ns: int) -> Optional[str]:
        """``None`` when admitted, else the typed rejection reason.

        Only the token-bucket (rate-limit) check lives here; the caller
        layers shard checks on top and reports them via
        :meth:`note_rejection`.
        """
        bucket = self._buckets.get(tenant)
        if bucket is not None:
            admitted = bucket.try_take(now_ns)
            hub = _telemetry()
            if hub is not None:
                hub.gauge(tenant, ADMISSION_LAYER, "tokens.level_milli",
                          int(bucket.tokens * 1000))
            if not admitted:
                self.note_rejection(now_ns, tenant, REJECT_RATE_LIMIT)
                return REJECT_RATE_LIMIT
        self.admitted += 1
        return None

    def note_rejection(self, now_ns: int, tenant: str, reason: str,
                       shard: Optional[str] = None) -> Rejection:
        rejection = Rejection(now_ns, tenant, reason, shard)
        if len(self.rejections) < self.MAX_LOGGED:
            self.rejections.append(rejection)
        key = (tenant, reason)
        self.rejected_counts[key] = self.rejected_counts.get(key, 0) + 1
        hub = _telemetry()
        if hub is not None:
            hub.count(tenant, ADMISSION_LAYER, "rejections.total")
        return rejection

    @property
    def rejected(self) -> int:
        return sum(self.rejected_counts.values())

    def rejected_by_reason(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for (_tenant, reason), n in self.rejected_counts.items():
            out[reason] = out.get(reason, 0) + n
        return dict(sorted(out.items()))

    def rejected_by_tenant(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for (tenant, _reason), n in self.rejected_counts.items():
            out[tenant] = out.get(tenant, 0) + n
        return dict(sorted(out.items()))

    def to_dict(self) -> Dict[str, Any]:
        return {"admitted": self.admitted, "rejected": self.rejected,
                "by_reason": self.rejected_by_reason(),
                "by_tenant": self.rejected_by_tenant()}
