"""Consistent-hash tenant -> shard placement.

A classic consistent-hash ring: each shard owns ``vnodes`` points on a
2^64 circle, a tenant lands on the first shard point clockwise from its
own hash.  Two properties matter for the fleet:

* **Determinism** — points come from SHA-256 over stable strings, never
  from Python's randomized ``hash()``, so the same shard set always
  yields the same placement on every run and host.
* **Minimal movement** — removing a shard relocates *only* the tenants
  that shard owned (they slide to the next point clockwise); every other
  tenant keeps its shard.  That is what makes shard failover cheap and
  what the rebalance test pins down.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple


def _point(label: str) -> int:
    """A stable 64-bit ring coordinate for *label*."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over shard ids."""

    def __init__(self, shard_ids: Iterable[str], vnodes: int = 64):
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.vnodes = int(vnodes)
        self._shards: List[str] = []
        #: sorted ring points and their owners (parallel lists)
        self._points: List[int] = []
        self._owners: List[str] = []
        for shard_id in shard_ids:
            self.add(shard_id)

    # -- membership --------------------------------------------------------------

    def shards(self) -> List[str]:
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def add(self, shard_id: str) -> None:
        shard_id = str(shard_id)
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id!r} already on the ring")
        self._shards.append(shard_id)
        for v in range(self.vnodes):
            point = _point(f"{shard_id}#{v}")
            idx = bisect.bisect(self._points, point)
            self._points.insert(idx, point)
            self._owners.insert(idx, shard_id)

    def remove(self, shard_id: str) -> None:
        shard_id = str(shard_id)
        if shard_id not in self._shards:
            raise ValueError(f"shard {shard_id!r} not on the ring")
        self._shards.remove(shard_id)
        keep = [(p, o) for p, o in zip(self._points, self._owners)
                if o != shard_id]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    # -- placement ---------------------------------------------------------------

    def place(self, key: str) -> str:
        """The shard owning *key* (first ring point clockwise)."""
        if not self._points:
            raise ValueError("cannot place on an empty ring")
        idx = bisect.bisect(self._points, _point(str(key)))
        if idx == len(self._points):  # wrap around the circle
            idx = 0
        return self._owners[idx]

    def assignments(self, keys: Sequence[str]) -> Dict[str, str]:
        """``{key: shard_id}`` for every key, in key order."""
        return {key: self.place(key) for key in sorted(keys)}

    def spread(self, keys: Sequence[str]) -> Dict[str, int]:
        """How many of *keys* land on each live shard (all shards
        listed, including empty ones)."""
        out = {shard: 0 for shard in self.shards()}
        for key in keys:
            out[self.place(key)] += 1
        return out


def moved_keys(before: Dict[str, str],
               after: Dict[str, str]) -> List[Tuple[str, str, str]]:
    """``(key, old_shard, new_shard)`` for every key whose placement
    changed between two assignment maps (the rebalance audit)."""
    moved = []
    for key in sorted(set(before) & set(after)):
        if before[key] != after[key]:
            moved.append((key, before[key], after[key]))
    return moved
