"""repro.fleet — open-loop traffic generation and sharded serving.

The paper evaluates single workflow invocations; this package turns the
reproduction into a *fleet*: deterministic seeded arrival processes
(:mod:`repro.fleet.traffic`) drive per-tenant traffic mixes across the
registered workloads and transports, and a sharded coordinator layer
(:mod:`repro.fleet.shard`) serves them — consistent-hash tenant
placement (:mod:`repro.fleet.placement`), token-bucket admission control
(:mod:`repro.fleet.admission`), per-shard autoscaled pod capacity, and
deterministic shard failover.  :func:`repro.fleet.runner.run_fleet`
ties everything together and returns a :class:`FleetResult` whose JSON
is byte-identical at a fixed seed.

Quick use::

    from repro.fleet import run_fleet, smoke_spec

    result = run_fleet(smoke_spec(seed=0))
    print(result.render())

See ``docs/fleet.md`` for the arrival-process math, the mix spec
format, and the shard architecture.
"""

from repro.fleet.admission import (AdmissionController, REJECT_QUEUE_FULL,
                                   REJECT_RATE_LIMIT, REJECT_SHARD_DOWN,
                                   Rejection, TokenBucket)
from repro.fleet.placement import HashRing
from repro.fork.policy import ScaleUpConfig
from repro.fleet.shard import (CoordinatorShard, ShardAutoscaler,
                               ShardedCoordinator)
from repro.fleet.traffic import (ArrivalProcess, BurstyArrivals,
                                 DiurnalArrivals, PoissonArrivals,
                                 TenantSpec, TrafficMix, default_tenants)
from repro.fleet.runner import (FleetResult, FleetSpec, ServiceProfile,
                                run_fleet, smoke_spec)

__all__ = [
    "AdmissionController",
    "ArrivalProcess",
    "BurstyArrivals",
    "CoordinatorShard",
    "DiurnalArrivals",
    "FleetResult",
    "FleetSpec",
    "HashRing",
    "PoissonArrivals",
    "REJECT_QUEUE_FULL",
    "REJECT_RATE_LIMIT",
    "REJECT_SHARD_DOWN",
    "Rejection",
    "ScaleUpConfig",
    "ServiceProfile",
    "ShardAutoscaler",
    "ShardedCoordinator",
    "TenantSpec",
    "TokenBucket",
    "TrafficMix",
    "default_tenants",
    "run_fleet",
    "smoke_spec",
]
