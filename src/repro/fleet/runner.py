"""The fleet runner: traffic + shards + monitoring → one FleetResult.

:func:`run_fleet` is the top of the fleet stack.  It builds one
deterministic engine, spawns one open-loop client process per tenant
(each drawing from its own named rng streams, so fleet composition never
perturbs a tenant's sequences), routes every arrival through the sharded
coordinator's admission/placement/queueing layers, and folds the
:class:`~repro.obs.monitor.FleetMonitor`'s windowed view plus the
coordinator's exact lifetime counters into a :class:`FleetResult`.

**Serving fidelity.**  A full platform invocation costs seconds of host
wall time, so million-invocation fleets serve from a
:class:`ServiceProfile`: per-``(workload, transport)`` base service
times with seeded lognormal jitter.  The static profile encodes the
paper's transport ordering (rmmap-prefetch fastest, storage slowest);
:meth:`ServiceProfile.calibrated` measures the real bases through
:func:`repro.api.run` — a handful of full-fidelity invocations anchor
the fleet's service times to the actual simulated stack.

**Determinism.**  ``FleetResult.to_json()`` is byte-identical across
same-seed runs: every timestamp and every sample derives from the
seeded rng tree and the engine's tie-break order, and wall-clock
throughput metrics are excluded from serialization unless explicitly
requested (``include_wall=True``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro import obs
from repro.api import BaseRunResult as _BaseRunResult
from repro.fleet.admission import AdmissionController
from repro.fleet.shard import ShardedCoordinator
from repro.fork.policy import ScaleUpConfig
from repro.fleet.traffic import TenantSpec, default_tenants
from repro.obs.monitor import FleetMonitor, PercentileSketch
from repro.sim.engine import Engine, Timeout
from repro.sim.rng import SeededRng, make_rng

#: FleetResult serialization schema tag.
RESULT_SCHEMA = "fleet-result/v1"

_SECOND_NS = 1_000_000_000

#: Static per-workload base service times (ns) — sized so the default
#: SLO guardrails (5 ms e2e) separate fast transports from slow ones.
DEFAULT_BASE_NS: Dict[str, int] = {
    "finra": 4_000_000,
    "ml-prediction": 2_500_000,
    "ml-training": 8_000_000,
    "wordcount": 1_500_000,
}

#: Relative transport cost — the paper's Fig 14 ordering: rmmap variants
#: beat messaging/naos, storage trails everything.
DEFAULT_TRANSPORT_FACTOR: Dict[str, float] = {
    "messaging": 1.0,
    "messaging-compressed": 0.8,
    "storage": 1.6,
    "storage-rdma": 0.9,
    "rmmap": 0.55,
    "rmmap-prefetch": 0.5,
    "naos": 0.7,
    "adaptive": 0.6,
}


class ServiceProfile:
    """Per-``(workload, transport)`` service-time model for replay serving.

    ``sample`` multiplies the pair's base time by a seeded lognormal
    jitter factor (median 1.0), drawing exactly one variate per call so
    admission outcomes can never shift a tenant's service stream.
    """

    def __init__(self, base_ns: Optional[Dict[str, int]] = None,
                 transport_factor: Optional[Dict[str, float]] = None,
                 pair_ns: Optional[Dict[Tuple[str, str], int]] = None,
                 sigma: float = 0.25, kind: str = "static"):
        self.base_ns = dict(DEFAULT_BASE_NS if base_ns is None
                            else base_ns)
        self.transport_factor = dict(
            DEFAULT_TRANSPORT_FACTOR if transport_factor is None
            else transport_factor)
        #: exact per-pair overrides (populated by :meth:`calibrated`)
        self.pair_ns = dict(pair_ns or {})
        self.sigma = float(sigma)
        self.kind = kind

    def mean_ns(self, workload: str, transport: str) -> int:
        """The pair's base (median) service time, jitter excluded."""
        exact = self.pair_ns.get((workload, transport))
        if exact is not None:
            return int(exact)
        base = self.base_ns.get(workload, 2_000_000)
        return int(base * self.transport_factor.get(transport, 1.0))

    def sample(self, rng: SeededRng, workload: str,
               transport: str) -> int:
        """One jittered service time (>= 1 ns); one rng draw per call."""
        jitter = rng.py.lognormvariate(0.0, self.sigma)
        return max(1, int(self.mean_ns(workload, transport) * jitter))

    @classmethod
    def calibrated(cls, pairs: Sequence[Tuple[str, str]], *,
                   seed: int = 0, scale: float = 0.02,
                   sigma: float = 0.25) -> "ServiceProfile":
        """Measure each pair's base through one real platform run.

        Each distinct ``(workload, transport)`` pair costs one full
        :func:`repro.api.run` invocation (seconds of wall time), so
        calibrate the handful of pairs a fleet actually serves, not the
        full cross product.
        """
        from repro.api import run as api_run
        pair_ns: Dict[Tuple[str, str], int] = {}
        for workload, transport in sorted(set(pairs)):
            result = api_run(workload, transport, seed=seed, scale=scale)
            pair_ns[(workload, transport)] = result.latency_ns
        return cls(pair_ns=pair_ns, sigma=sigma, kind="calibrated")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "sigma": self.sigma,
            "base_ns": dict(sorted(self.base_ns.items())),
            "transport_factor": dict(
                sorted(self.transport_factor.items())),
            "pair_ns": {f"{w}/{t}": ns for (w, t), ns
                        in sorted(self.pair_ns.items())},
        }


@dataclass
class FleetSpec:
    """Everything one fleet run needs, seed included."""

    tenants: List[TenantSpec]
    seed: int = 0
    duration_s: float = 10.0
    #: extra simulated time after the arrival horizon so inflight
    #: invocations can finish before the run is cut off
    drain_s: float = 2.0
    n_shards: int = 4
    pods_per_shard: int = 2
    queue_limit: int = 64
    autoscale: bool = True
    min_pods: int = 1
    max_pods: int = 16
    cold_start_ms: float = 50.0
    autoscale_interval_ms: float = 100.0
    profile: ServiceProfile = field(default_factory=ServiceProfile)
    #: how shards add pods on scale-up (see :mod:`repro.fork`):
    #: ``None`` keeps the legacy cold-start-only model AND the legacy
    #: result JSON byte-for-byte — every scale-up key below is emitted
    #: only when this knob is set
    scale_up: Optional[ScaleUpConfig] = None
    #: ``(at_s, shard_id)`` chaos points: kill that shard at that instant
    shard_failures: List[Tuple[float, str]] = field(default_factory=list)
    slos: Optional[Sequence[Any]] = None  # default: obs.slo.DEFAULT_SLOS
    # -- observability knobs -------------------------------------------------
    # Deliberately excluded from to_dict(): telemetry is a pure observer,
    # so the serialized spec (and the whole FleetResult JSON) must stay
    # byte-identical whether or not triage instrumentation is on.
    #: keep only every Nth span (exemplar traces bypass the sampling)
    span_sample_every: int = 1
    #: retain worst-k / median-band exemplar trace ids per fleet key
    exemplars: bool = True
    exemplar_k: int = 3
    #: record bounded resource-saturation timelines on the hub
    timelines: bool = True
    #: track page-provenance lineage (repro.obs.lineage) on the hub
    lineage: bool = False

    def expected_invocations(self) -> int:
        """Rough offered load: sum of mean rates times the horizon."""
        return int(sum(t.arrivals.mean_rate_rps() for t in self.tenants)
                   * self.duration_s)

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "seed": self.seed,
            "duration_s": self.duration_s,
            "drain_s": self.drain_s,
            "n_shards": self.n_shards,
            "pods_per_shard": self.pods_per_shard,
            "queue_limit": self.queue_limit,
            "autoscale": self.autoscale,
            "min_pods": self.min_pods,
            "max_pods": self.max_pods,
            "cold_start_ms": self.cold_start_ms,
            "autoscale_interval_ms": self.autoscale_interval_ms,
            "profile": self.profile.to_dict(),
            "shard_failures": [[at_s, sid]
                               for at_s, sid in self.shard_failures],
            "tenants": [t.to_dict() for t in self.tenants],
        }
        if self.scale_up is not None:
            out["scale_up"] = self.scale_up.to_dict()
        return out


def smoke_spec(seed: int = 0, n_tenants: int = 3, n_shards: int = 2,
               duration_s: float = 6.0) -> FleetSpec:
    """The bounded CI fleet: ~10^3 invocations, 2 shards, 3 tenants."""
    return FleetSpec(tenants=default_tenants(n_tenants,
                                             base_rate_rps=60.0),
                     seed=seed, n_shards=n_shards,
                     duration_s=duration_s)


@dataclass
class FleetResult(_BaseRunResult):
    """One fleet run's complete outcome (JSON-stable at a fixed seed).

    Shares the uniform result surface of :class:`repro.api.RunResult`
    (``.to_json()`` / ``.write_trace()`` / ``.write_flamegraph()``) via
    the common base class.
    """

    spec: FleetSpec
    seed: int
    sim_end_ns: int
    totals: Dict[str, Any]
    tenants: List[Dict[str, Any]]
    shards: List[Dict[str, Any]]
    admission: Dict[str, Any]
    alerts: List[Dict[str, Any]]
    #: host wall-clock throughput — excluded from to_dict/to_json unless
    #: include_wall=True, because wall time is not seed-deterministic
    wall: Dict[str, Any] = field(default_factory=dict)
    monitor: Optional[FleetMonitor] = None
    #: the hub that observed the run (write_trace/write_flamegraph input)
    telemetry: Optional[obs.Telemetry] = None

    def to_dict(self, include_wall: bool = False) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "schema": RESULT_SCHEMA,
            "seed": self.seed,
            "sim_end_ns": self.sim_end_ns,
            "spec": self.spec.to_dict(),
            "totals": self.totals,
            "admission": self.admission,
            "tenants": self.tenants,
            "shards": self.shards,
            "alerts": self.alerts,
        }
        if include_wall:
            out["wall"] = self.wall
        return out

    def to_json(self, include_wall: bool = False) -> str:
        return json.dumps(self.to_dict(include_wall=include_wall),
                          sort_keys=True, indent=2)

    def tenant(self, name: str) -> Dict[str, Any]:
        for entry in self.tenants:
            if entry["tenant"] == name:
                return entry
        raise KeyError(name)

    def render(self) -> str:
        """Ranked text tables: totals, per-tenant SLO view, shards."""
        from repro.analysis.report import Table

        lines = [
            f"fleet run: seed={self.seed} "
            f"sim={self.sim_end_ns / 1e9:.3f}s "
            f"arrivals={self.totals['arrivals']} "
            f"completed={self.totals['completed']} "
            f"failed={self.totals['failed']} "
            f"rejected={self.totals['rejected']}"]
        if self.wall:
            lines.append(
                f"wall: {self.wall['elapsed_s']:.2f}s, "
                f"{self.wall['invocations_per_sec']:.0f} inv/s, "
                f"{self.wall['events_per_sec']:.0f} events/s")
        tenant_table = Table(
            "per-tenant fleet view",
            ["tenant", "shard", "arrivals", "done", "rejected",
             "avail", "p50_ms", "p99_ms"])
        for entry in self.tenants:
            tenant_table.add_row(
                entry["tenant"], entry["shard"] or "-",
                entry["arrivals"], entry["completed"],
                entry["rejected"],
                f"{100 * entry['availability']:.2f}%",
                f"{entry['p50_ms']:.3f}", f"{entry['p99_ms']:.3f}")
        lines.append(tenant_table.render())
        shard_table = Table(
            "shards",
            ["shard", "alive", "pods", "peak", "done", "failed",
             "util", "peak_q"])
        for entry in self.shards:
            shard_table.add_row(
                entry["shard"], "yes" if entry["alive"] else "DEAD",
                entry["pods"], entry["peak_pods"], entry["completed"],
                entry["failed"], f"{100 * entry['utilization']:.1f}%",
                entry["peak_queue"])
        lines.append(shard_table.render())
        if self.alerts:
            alert_table = Table("SLO alerts", ["slo", "tenant",
                                               "workflow", "transport",
                                               "fired_ns", "cleared_ns"])
            for alert in self.alerts:
                alert_table.add_row(
                    alert["slo"], alert["tenant"], alert["workflow"],
                    alert["transport"], alert["fired_ns"],
                    alert["cleared_ns"] if alert["cleared_ns"]
                    is not None else "ACTIVE")
            lines.append(alert_table.render())
        else:
            lines.append("no SLO alerts fired")
        return "\n".join(lines)


def _tenant_client(engine: Engine, coord: ShardedCoordinator,
                   tenant: TenantSpec, root: SeededRng,
                   profile: ServiceProfile, end_ns: int) -> Generator:
    """One open-loop client: arrivals never wait for completions.

    Three named rng streams per tenant — ``(name, "arrivals")``,
    ``(name, "mix")``, ``(name, "service")`` — each a pure function of
    ``(seed, tenant, purpose)``, so adding or removing any other tenant
    leaves this tenant's entire timeline untouched.  The service draw
    happens unconditionally before submit, so rejections can't shift the
    stream either.
    """
    rng_arrivals = root.stream(tenant.name, "arrivals")
    rng_mix = root.stream(tenant.name, "mix")
    rng_service = root.stream(tenant.name, "service")
    for at_ns in tenant.arrivals.arrivals(rng_arrivals, 0, end_ns):
        delay = at_ns - engine.now
        if delay > 0:
            yield Timeout(delay)
        workload, transport = tenant.mix.pick(rng_mix)
        service_ns = profile.sample(rng_service, workload, transport)
        coord.submit(tenant.name, workload, transport, service_ns)


def run_fleet(spec: FleetSpec,
              hub: Optional[obs.Telemetry] = None,
              monitor: Optional[FleetMonitor] = None) -> FleetResult:
    """Run one fleet to completion and return its :class:`FleetResult`.

    Pass an existing *hub* / *monitor* to share telemetry with a larger
    harness; by default each run gets a fresh hub and a fresh
    :class:`FleetMonitor` (returned on ``FleetResult.monitor``).
    """
    if not spec.tenants:
        raise ValueError("a fleet needs at least one tenant")
    wall0 = time.perf_counter()
    if hub is None:
        hub = obs.Telemetry(span_sample_every=spec.span_sample_every)
        if spec.timelines:
            hub.enable_timelines()
    if spec.lineage and hub.lineage is None:
        hub.enable_lineage()
    mon = monitor if monitor is not None else FleetMonitor(
        slos=spec.slos, exemplars=spec.exemplars,
        exemplar_k=spec.exemplar_k)
    mon.attach(hub)
    try:
        with obs.capture(hub):
            engine = Engine()
            root = make_rng(spec.seed)
            admission = AdmissionController()
            for tenant in spec.tenants:
                if tenant.admission_rps is not None:
                    admission.configure(tenant.name, tenant.admission_rps,
                                        tenant.admission_burst)
            coord = ShardedCoordinator(
                engine,
                n_shards=spec.n_shards,
                pods_per_shard=spec.pods_per_shard,
                queue_limit=spec.queue_limit,
                admission=admission,
                autoscale=spec.autoscale,
                min_pods=spec.min_pods,
                max_pods=spec.max_pods,
                cold_start_ns=int(spec.cold_start_ms * 1e6),
                autoscale_interval_ns=int(
                    spec.autoscale_interval_ms * 1e6),
                scale_up=spec.scale_up).start()
            end_ns = int(spec.duration_s * _SECOND_NS)
            for tenant in spec.tenants:
                engine.spawn(
                    _tenant_client(engine, coord, tenant, root,
                                   spec.profile, end_ns),
                    name=f"client[{tenant.name}]")
            for at_s, shard_id in spec.shard_failures:
                engine.call_at(
                    int(at_s * _SECOND_NS),
                    (lambda sid: lambda: coord.fail_shard(sid))(shard_id))
            sim_end = engine.run(
                until=end_ns + int(spec.drain_s * _SECOND_NS))
    finally:
        mon.detach()
    wall_s = time.perf_counter() - wall0
    return _collect_result(spec, coord, mon, hub, sim_end, wall_s)


def _collect_result(spec: FleetSpec, coord: ShardedCoordinator,
                    mon: FleetMonitor, hub: obs.Telemetry,
                    sim_end_ns: int, wall_s: float) -> FleetResult:
    admission = coord.admission
    rejected_by_tenant = admission.rejected_by_tenant()
    placements = (coord.ring.assignments(
        [t.name for t in spec.tenants]) if len(coord.ring) else {})
    tenants: List[Dict[str, Any]] = []
    for tenant in sorted(spec.tenants, key=lambda t: t.name):
        submitted, completed, failed = coord.tenant_counts.get(
            tenant.name, [0, 0, 0])
        rejected = rejected_by_tenant.get(tenant.name, 0)
        arrivals = submitted + rejected
        served = completed + failed
        # availability folds rejections into the denominator: a refused
        # request is unavailable capacity exactly like a failed one
        denominator = completed + failed + rejected
        sketch = PercentileSketch.merged(
            mon.latency[key].lifetime for key in mon.keys()
            if key[0] == tenant.name)
        tenants.append({
            "tenant": tenant.name,
            "shard": placements.get(tenant.name),
            "arrivals": arrivals,
            "submitted": submitted,
            "completed": completed,
            "failed": failed,
            "rejected": rejected,
            "inflight_at_end": submitted - served,
            "availability": round(
                completed / denominator, 6) if denominator else 1.0,
            "p50_ms": round(sketch.quantile(0.50) / 1e6, 6),
            "p99_ms": round(sketch.quantile(0.99) / 1e6, 6),
            "mean_rate_rps": round(tenant.arrivals.mean_rate_rps(), 6),
        })
    stats = coord.stats(sim_end_ns)
    totals = {
        "arrivals": coord.submitted + admission.rejected,
        "submitted": coord.submitted,
        "completed": coord.completed,
        "failed": coord.failed,
        "rejected": admission.rejected,
        "inflight_at_end": (coord.submitted - coord.completed
                            - coord.failed),
        "observed": mon.observed,
    }
    if spec.scale_up is not None:
        shards = list(coord.shards.values())
        starts: Dict[str, int] = {}
        for shard in shards:
            for mode, n in shard.starts.items():
                starts[mode] = starts.get(mode, 0) + n
        totals["starts"] = dict(sorted(starts.items()))
        totals["frames"] = {
            "resident": sum(s.resident_frames() for s in shards),
            "peak": sum(s.peak_frames for s in shards),
            "mean": round(sum(s.mean_frames(sim_end_ns)
                              for s in shards), 2),
        }
    events = hub.counter("sim", "sim.engine", "events.dispatched")
    invocations = coord.completed + coord.failed
    records = hub.records
    wall = {
        "elapsed_s": round(wall_s, 3),
        "events": events,
        "invocations": invocations,
        "records": records,
        "events_per_sec": round(events / wall_s, 3) if wall_s else 0.0,
        "invocations_per_sec": round(invocations / wall_s, 3)
        if wall_s else 0.0,
        "records_per_sec": round(records / wall_s, 3) if wall_s else 0.0,
    }
    return FleetResult(
        spec=spec, seed=spec.seed, sim_end_ns=sim_end_ns,
        totals=totals, tenants=tenants, shards=stats["shards"],
        admission=stats["admission"],
        alerts=[a.to_dict() for a in mon.alerts],
        wall=wall, monitor=mon, telemetry=hub)
