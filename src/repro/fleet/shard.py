"""Sharded multi-tenant coordinators under one simulation engine.

One :class:`ShardedCoordinator` partitions tenants across N
:class:`CoordinatorShard` instances via a consistent-hash ring
(:mod:`repro.fleet.placement`).  Each shard is a pool of pod slots with a
FIFO wait queue, a per-shard :class:`ShardAutoscaler` (KPA-style: scale
to observed concurrency with headroom, cold-start delay on the way up),
and utilization accounting as exact busy-time / pod-time integrals over
the simulated clock.

Admission happens at :meth:`ShardedCoordinator.submit` — before a
process is ever spawned — with typed rejections
(:mod:`repro.fleet.admission`): ``rate-limit`` when the tenant's token
bucket is empty, ``queue-full`` when the target shard's wait queue is at
capacity, ``shard-down`` when no live shard can serve the tenant.  Every
rejection is mirrored onto the telemetry hub as a
``platform``/``invocation.rejected`` event so the fleet monitor folds it
into availability.

Failover: :meth:`ShardedCoordinator.fail_shard` kills a shard at a
simulated instant — inflight invocations are interrupted with
:class:`~repro.errors.ShardUnavailable`, queued waiters fail, and the
ring's minimal-movement property relocates *only* that shard's tenants
onto survivors.  Because placement, interrupts and wakeups all run
through the deterministic event queue, a crash drill replays
bit-identically at a fixed seed.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Generator, Iterable, List, Optional

from repro.errors import ShardUnavailable
from repro.fleet.admission import (AdmissionController, REJECT_QUEUE_FULL,
                                   REJECT_SHARD_DOWN)
from repro.fleet.placement import HashRing
from repro.fork.policy import (SCALE_UP_COLD, SCALE_UP_FORK,
                               SCALE_UP_PREWARM, ScaleUpConfig)
from repro.obs.telemetry import current as _telemetry
from repro.sim.engine import Engine, Event, Process, Timeout

#: Layer under which shard-level platform events/counters are filed
#: (matches the single-coordinator platform layer so one monitor serves
#: both).
PLATFORM_LAYER = "platform"

#: Layer for shard-local utilization gauges and invocation spans — kept
#: apart from ``platform`` so saturation triage can tell shard capacity
#: pressure from coordinator-level aggregates.
FLEET_LAYER = "fleet.shard"


class CoordinatorShard:
    """One coordinator shard: pod slots, a FIFO wait queue, accounting.

    The shard holds no scheduling logic of its own — pods are capacity
    slots, acquisition is slot-or-enqueue, release hands the freed slot
    to the queue head (strict FIFO, deterministic through the engine's
    event queue).  Busy-time and pod-time integrals accumulate on every
    state change, so utilization is exact in simulated time.
    """

    def __init__(self, engine: Engine, shard_id: str, pods: int = 2,
                 queue_limit: int = 64,
                 scale_up: Optional[ScaleUpConfig] = None):
        if pods < 1:
            raise ValueError("a shard needs at least one pod")
        if queue_limit < 0:
            raise ValueError("queue_limit must be non-negative")
        self.engine = engine
        self.shard_id = str(shard_id)
        self.pods = int(pods)
        self.queue_limit = int(queue_limit)
        #: the scale-up mechanism model (see :mod:`repro.fork`);
        #: ``None`` keeps the legacy cold-start-only accounting and
        #: leaves every stats/JSON schema byte-identical
        self.scale_up = scale_up
        self.alive = True
        self.inflight = 0
        self.queue: List[Event] = []
        # lifetime counters
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.peak_inflight = 0
        self.peak_queue = 0
        self.peak_pods = int(pods)
        self.died_ns: Optional[int] = None
        # exact utilization integrals (ns * pods)
        self._busy_ns = 0
        self._pods_ns = 0
        self._last_ns = engine.now
        self._created_ns = engine.now
        # how each live pod was started, LIFO (scale-down removes the
        # newest pod first, so fork-backed surge pods leave first); the
        # initial allocation is treated as cold-booted
        self.pod_modes: List[str] = [SCALE_UP_COLD] * int(pods)
        self.starts: Dict[str, int] = {SCALE_UP_COLD: 0,
                                       SCALE_UP_PREWARM: 0,
                                       SCALE_UP_FORK: 0}
        # resident-frame integral (ns * frames) — only meaningful (and
        # only accumulated) when a scale_up model prices pods
        self._frames_ns = 0
        self.peak_frames = self.resident_frames()
        # inflight invocation processes, interrupted on shard failure
        self._procs: List[Process] = []

    # -- accounting ------------------------------------------------------------

    def _account(self, now_ns: int) -> None:
        dt = now_ns - self._last_ns
        if dt > 0:
            self._busy_ns += min(self.inflight, self.pods) * dt
            self._pods_ns += self.pods * dt
            if self.scale_up is not None:
                self._frames_ns += self.resident_frames() * dt
            self._last_ns = now_ns

    def resident_frames(self) -> int:
        """Frames currently pinned by this shard's pods: full footprint
        for cold/prewarmed pods, the pulled working set for fork-backed
        ones (they demand-page the rest from their source)."""
        if self.scale_up is None:
            return 0
        return sum(self.scale_up.frames_for(m) for m in self.pod_modes)

    def mean_frames(self, now_ns: int) -> float:
        """Time-averaged resident frames since the shard was created."""
        self._account(now_ns)
        lifetime = now_ns - self._created_ns
        return self._frames_ns / lifetime if lifetime > 0 else \
            float(self.resident_frames())

    def utilization(self, now_ns: Optional[int] = None) -> float:
        """Busy pod-time over provisioned pod-time, exact in sim time."""
        if now_ns is not None:
            self._account(now_ns)
        return self._busy_ns / self._pods_ns if self._pods_ns else 0.0

    # -- capacity --------------------------------------------------------------

    def set_pods(self, n: int, now_ns: int,
                 mode: str = SCALE_UP_COLD) -> None:
        """Resize the pod pool (autoscaler hook); wakes waiters on grow.

        *mode* records how the added pods materialized (``cold``,
        ``prewarm`` or ``fork``) for the start-split counters and the
        resident-frame model; shrink always removes the newest pods
        first, so transient fork-backed capacity is reclaimed before
        long-lived cold-booted pods.
        """
        n = max(1, int(n))
        if n == self.pods:
            return
        self._account(now_ns)
        grew = n - self.pods
        if grew > 0:
            self.pod_modes.extend([mode] * grew)
            self.starts[mode] = self.starts.get(mode, 0) + grew
        else:
            del self.pod_modes[n:]
        self.pods = n
        if n > self.peak_pods:
            self.peak_pods = n
        frames = self.resident_frames()
        if frames > self.peak_frames:
            self.peak_frames = frames
        hub = _telemetry()
        if hub is not None:
            hub.gauge(self.shard_id, FLEET_LAYER, "pods.provisioned", n)
            if self.scale_up is not None:
                hub.gauge(self.shard_id, FLEET_LAYER,
                          "frames.resident", frames)
                if grew > 0 and mode == SCALE_UP_FORK:
                    hub.count(self.shard_id, FLEET_LAYER,
                              "pods.fork_starts", grew)
        self._wake(now_ns)

    # -- slot protocol ---------------------------------------------------------

    def take(self, now_ns: int) -> None:
        """Claim a free slot immediately (caller checked availability)."""
        self._account(now_ns)
        self.inflight += 1
        if self.inflight > self.peak_inflight:
            self.peak_inflight = self.inflight

    def enqueue(self, now_ns: int) -> Event:
        """Join the FIFO wait queue; the returned event fires (holding a
        transferred slot) when this waiter reaches the front."""
        ev = Event(f"{self.shard_id}.slot")
        self.queue.append(ev)
        if len(self.queue) > self.peak_queue:
            self.peak_queue = len(self.queue)
        return ev

    def release(self, now_ns: int) -> None:
        """Free a slot and hand it to the queue head, if any."""
        self._account(now_ns)
        self.inflight -= 1
        self._wake(now_ns)

    def _wake(self, now_ns: int) -> None:
        while self.queue and self.inflight < self.pods:
            ev = self.queue.pop(0)
            if ev.triggered:  # already failed by a shard crash
                continue
            # the slot transfers to the waiter before it resumes, so a
            # later arrival can never jump the queue
            self.take(now_ns)
            self.engine.schedule(0, ev)

    def register(self, proc: Process) -> None:
        """Track an inflight invocation process for crash interruption."""
        self._procs.append(proc)
        proc.add_callback(self._forget)

    def _forget(self, done: Event) -> None:
        try:
            self._procs.remove(done)  # Process is an Event
        except ValueError:  # pragma: no cover - already swept by fail()
            pass

    # -- failure ---------------------------------------------------------------

    def fail(self, now_ns: int) -> int:
        """Kill the shard: fail queued waiters, interrupt inflight work.

        Returns how many invocations (queued + inflight) were aborted.
        Interrupts and event failures are delivered through the engine's
        deterministic queue, so a crash at a fixed simulated instant
        always aborts the same set in the same order.
        """
        if not self.alive:
            return 0
        self._account(now_ns)
        self.alive = False
        self.died_ns = now_ns
        # one aborted *invocation* per live process — queued waiters are
        # both an Event and a Process, so count processes, not deliveries
        aborted = sum(1 for proc in self._procs if not proc.triggered)
        for ev in self.queue:
            if not ev.triggered:
                ev.fail(ShardUnavailable(
                    f"shard {self.shard_id!r} died at {now_ns} ns "
                    f"(queued waiter aborted)"))
        self.queue.clear()
        for proc in list(self._procs):
            if not proc.triggered:
                proc.interrupt(ShardUnavailable(
                    f"shard {self.shard_id!r} died at {now_ns} ns "
                    f"(inflight invocation aborted)"))
        self._procs.clear()
        return aborted

    # -- read-back -------------------------------------------------------------

    def stats(self, now_ns: Optional[int] = None) -> Dict[str, Any]:
        out = {
            "shard": self.shard_id,
            "alive": self.alive,
            "pods": self.pods,
            "peak_pods": self.peak_pods,
            "inflight": self.inflight,
            "queued": len(self.queue),
            "peak_inflight": self.peak_inflight,
            "peak_queue": self.peak_queue,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "utilization": round(self.utilization(now_ns), 6),
            "died_ns": self.died_ns,
        }
        if self.scale_up is not None:
            # only under an explicit scale-up model: the legacy schema
            # must stay byte-identical when the knob is off
            at = self.engine.now if now_ns is None else now_ns
            out["starts"] = dict(self.starts)
            out["frames"] = {
                "resident": self.resident_frames(),
                "peak": self.peak_frames,
                "mean": round(self.mean_frames(at), 2),
            }
        return out


class ShardAutoscaler:
    """KPA-style concurrency autoscaler for one shard.

    Every ``interval_ns`` the scaler reads the shard's observed demand
    (inflight + queued), targets ``ceil(demand * headroom /
    target_concurrency)`` pods clamped to ``[min_pods, max_pods]``, and:

    * scales **up** after ``cold_start_ns`` (pods take time to boot;
      applied via :meth:`Engine.call_at`, so the delay is exact and
      deterministic);
    * scales **down** immediately but only after ``idle_intervals``
      consecutive decisions wanted fewer pods (hysteresis against
      thrash).
    """

    def __init__(self, engine: Engine, shard: CoordinatorShard,
                 min_pods: int = 1, max_pods: int = 16,
                 target_concurrency: float = 1.0, headroom: float = 1.2,
                 cold_start_ns: int = 50_000_000,
                 interval_ns: int = 100_000_000,
                 idle_intervals: int = 3,
                 scale_up: Optional[ScaleUpConfig] = None):
        if min_pods < 1 or max_pods < min_pods:
            raise ValueError("need 1 <= min_pods <= max_pods")
        if target_concurrency <= 0 or headroom <= 0:
            raise ValueError("target_concurrency and headroom "
                             "must be positive")
        self.engine = engine
        self.shard = shard
        self.min_pods = int(min_pods)
        self.max_pods = int(max_pods)
        self.target_concurrency = float(target_concurrency)
        self.headroom = float(headroom)
        self.cold_start_ns = int(cold_start_ns)
        self.interval_ns = int(interval_ns)
        self.idle_intervals = int(idle_intervals)
        self.scale_up = scale_up
        self.scale_ups = 0
        self.scale_downs = 0
        self.decisions = 0
        self._want_down = 0
        self._pending_up = 0  # highest target already booting
        self._proc: Optional[Process] = None

    @property
    def _static_pool(self) -> bool:
        """Provisioned concurrency: the prewarm mechanism holds
        ``max_pods`` from the start and never scales."""
        return self.scale_up is not None \
            and self.scale_up.kind == SCALE_UP_PREWARM

    def _scale_up_delay_ns(self) -> int:
        if self.scale_up is None:
            return self.cold_start_ns
        return self.scale_up.scale_up_delay_ns(self.cold_start_ns)

    def _scale_up_mode(self) -> str:
        if self.scale_up is None:
            return SCALE_UP_COLD
        return SCALE_UP_FORK if self.scale_up.kind == SCALE_UP_FORK \
            else SCALE_UP_COLD

    def start(self) -> Process:
        if self._static_pool and self.shard.pods < self.max_pods:
            self.shard.set_pods(self.max_pods, self.engine.now,
                                mode=SCALE_UP_PREWARM)
        self._proc = self.engine.spawn(
            self._loop(), name=f"autoscaler[{self.shard.shard_id}]")
        return self._proc

    def desired_pods(self) -> int:
        demand = self.shard.inflight + len(self.shard.queue)
        want = math.ceil(demand * self.headroom / self.target_concurrency)
        return max(self.min_pods, min(self.max_pods, want))

    def evaluate(self) -> None:
        """One scaling decision at the current simulated instant."""
        if not self.shard.alive:
            return
        self.decisions += 1
        if self._static_pool:
            return  # provisioned concurrency: nothing to decide
        now = self.engine.now
        desired = self.desired_pods()
        if desired > self.shard.pods:
            self._want_down = 0
            if desired > self._pending_up:
                self._pending_up = desired
                self.engine.call_at(now + self._scale_up_delay_ns(),
                                    self._booted(desired))
        elif desired < self.shard.pods:
            self._want_down += 1
            if self._want_down >= self.idle_intervals:
                self._want_down = 0
                self.shard.set_pods(desired, self.engine.now)
                self.scale_downs += 1
        else:
            self._want_down = 0

    def _booted(self, target: int):
        def apply() -> None:
            if self._pending_up <= self.shard.pods:
                self._pending_up = 0
            if not self.shard.alive or target <= self.shard.pods:
                return
            self.shard.set_pods(min(target, self.max_pods),
                                self.engine.now,
                                mode=self._scale_up_mode())
            self.scale_ups += 1
            if self._pending_up <= self.shard.pods:
                self._pending_up = 0
        return apply

    def _loop(self) -> Generator:
        while self.shard.alive:
            yield Timeout(self.interval_ns)
            self.evaluate()

    def stats(self) -> Dict[str, Any]:
        return {"min_pods": self.min_pods, "max_pods": self.max_pods,
                "decisions": self.decisions, "scale_ups": self.scale_ups,
                "scale_downs": self.scale_downs}


class ShardedCoordinator:
    """N coordinator shards behind consistent-hash tenant placement.

    The coordinator is transport-agnostic: callers hand
    :meth:`submit` a pre-computed ``service_ns`` (from a
    :class:`~repro.fleet.runner.ServiceProfile` or a full platform run)
    and the shard layer models queueing, capacity, admission and failure
    on top of it.
    """

    def __init__(self, engine: Engine,
                 n_shards: int = 4,
                 pods_per_shard: int = 2,
                 queue_limit: int = 64,
                 admission: Optional[AdmissionController] = None,
                 autoscale: bool = True,
                 min_pods: int = 1, max_pods: int = 16,
                 cold_start_ns: int = 50_000_000,
                 autoscale_interval_ns: int = 100_000_000,
                 vnodes: int = 64,
                 shard_ids: Optional[Iterable[str]] = None,
                 scale_up: Optional[ScaleUpConfig] = None):
        if shard_ids is None:
            if n_shards < 1:
                raise ValueError("need at least one shard")
            shard_ids = [f"shard-{i}" for i in range(int(n_shards))]
        else:
            shard_ids = [str(s) for s in shard_ids]
        self.engine = engine
        self.ring = HashRing(shard_ids, vnodes=vnodes)
        self.queue_limit = int(queue_limit)
        self.scale_up = scale_up
        self.admission = admission if admission is not None \
            else AdmissionController()
        self.shards: Dict[str, CoordinatorShard] = {
            sid: CoordinatorShard(engine, sid, pods=pods_per_shard,
                                  queue_limit=queue_limit,
                                  scale_up=scale_up)
            for sid in shard_ids}
        self.autoscalers: Dict[str, ShardAutoscaler] = {}
        if autoscale:
            for sid, shard in self.shards.items():
                self.autoscalers[sid] = ShardAutoscaler(
                    engine, shard, min_pods=min_pods, max_pods=max_pods,
                    cold_start_ns=cold_start_ns,
                    interval_ns=autoscale_interval_ns,
                    scale_up=scale_up)
        self._started = False
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        #: per-tenant lifetime counts: {tenant: [submitted, done, failed]}
        self.tenant_counts: Dict[str, List[int]] = {}

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ShardedCoordinator":
        """Spawn the per-shard autoscaler loops (idempotent)."""
        if not self._started:
            self._started = True
            for scaler in self.autoscalers.values():
                scaler.start()
        return self

    # -- placement -------------------------------------------------------------

    def shard_for(self, tenant: str) -> Optional[CoordinatorShard]:
        """The live shard serving *tenant*, or ``None`` when the ring is
        empty (total outage)."""
        if not len(self.ring):
            return None
        return self.shards[self.ring.place(tenant)]

    def placements(self, tenants: Iterable[str]) -> Dict[str, str]:
        return self.ring.assignments(list(tenants))

    # -- admission + dispatch --------------------------------------------------

    def submit(self, tenant: str, workload: str, transport: str,
               service_ns: int) -> Optional[Process]:
        """Admit and dispatch one invocation at the current instant.

        Returns the invocation :class:`Process`, or ``None`` with a
        typed rejection recorded (and an ``invocation.rejected`` event
        emitted) when admission control refuses the request.  Rejected
        requests cost zero simulated time and never spawn a process.
        """
        now = self.engine.now
        reason = self.admission.admit(tenant, now)
        if reason is not None:
            self._emit_rejected(now, tenant, workload, transport,
                                reason, shard=None)
            return None
        shard = self.shard_for(tenant)
        if shard is None or not shard.alive:
            sid = shard.shard_id if shard is not None else None
            self.admission.note_rejection(now, tenant, REJECT_SHARD_DOWN,
                                          shard=sid)
            self._emit_rejected(now, tenant, workload, transport,
                                REJECT_SHARD_DOWN, shard=sid)
            return None
        if shard.inflight >= shard.pods \
                and len(shard.queue) >= self.queue_limit:
            self.admission.note_rejection(now, tenant, REJECT_QUEUE_FULL,
                                          shard=shard.shard_id)
            self._emit_rejected(now, tenant, workload, transport,
                                REJECT_QUEUE_FULL, shard=shard.shard_id)
            return None
        self.submitted += 1
        shard.submitted += 1
        self._tenant_count(tenant)[0] += 1
        # deterministic per-invocation trace id ("f" marks fleet-minted
        # ids apart from single-run RunResult.trace_id request numbers)
        trace_id = f"{workload}#f{self.submitted}@{transport}"
        # claim the slot (or queue position) synchronously, before the
        # invocation process ever runs: capacity checks on the next
        # same-instant submit must see this request's occupancy
        if shard.inflight < shard.pods and not shard.queue:
            shard.take(now)
            slot_ev = None
        else:
            slot_ev = shard.enqueue(now)
        self._gauge_shard(shard)
        proc = self.engine.spawn(
            self._invoke(shard, tenant, workload, transport,
                         int(service_ns), now, slot_ev, trace_id),
            name=f"invoke[{tenant}@{shard.shard_id}]")
        shard.register(proc)
        return proc

    def _invoke(self, shard: CoordinatorShard, tenant: str,
                workload: str, transport: str, service_ns: int,
                submit_ns: int, slot_ev: Optional[Event],
                trace_id: str) -> Generator:
        # simulated instant service began (None while still queued — a
        # crash before the slot transfer leaves it None)
        service_start = submit_ns if slot_ev is None else None
        try:
            if slot_ev is not None:
                yield slot_ev
                service_start = self.engine.now
            try:
                yield Timeout(service_ns)
            finally:
                if shard.alive:
                    shard.release(self.engine.now)
                    self._gauge_shard(shard)
        except ShardUnavailable:
            shard.failed += 1
            self.failed += 1
            self._tenant_count(tenant)[2] += 1
            self._emit_done(shard, tenant, workload, transport,
                            latency_ns=None, ok=False,
                            trace_id=trace_id, submit_ns=submit_ns,
                            service_start_ns=service_start)
            return
        latency_ns = self.engine.now - submit_ns
        shard.completed += 1
        self.completed += 1
        self._tenant_count(tenant)[1] += 1
        self._emit_done(shard, tenant, workload, transport,
                        latency_ns=latency_ns, ok=True,
                        trace_id=trace_id, submit_ns=submit_ns,
                        service_start_ns=service_start)

    def _tenant_count(self, tenant: str) -> List[int]:
        counts = self.tenant_counts.get(tenant)
        if counts is None:
            counts = self.tenant_counts[tenant] = [0, 0, 0]
        return counts

    # -- failure injection -----------------------------------------------------

    def fail_shard(self, shard_id: str) -> int:
        """Kill *shard_id* now: abort its work, rebalance its tenants.

        Returns the number of aborted invocations.  Only the dead
        shard's tenants move (consistent-hash minimal movement); every
        other tenant keeps its placement.
        """
        shard = self.shards[shard_id]
        now = self.engine.now
        aborted = shard.fail(now)
        if shard_id in self.ring.shards():
            self.ring.remove(shard_id)
        hub = _telemetry()
        if hub is not None:
            hub.event(shard_id, PLATFORM_LAYER, "shard.failed",
                      shard=shard_id, aborted=aborted)
            hub.count(shard_id, PLATFORM_LAYER, "shards.failed")
        return aborted

    def live_shards(self) -> List[str]:
        return [sid for sid, s in self.shards.items() if s.alive]

    # -- telemetry -------------------------------------------------------------

    def _gauge_shard(self, shard: CoordinatorShard) -> None:
        """Publish the shard's occupancy/queue gauges (saturation feed)."""
        hub = _telemetry()
        if hub is None:
            return
        sid = shard.shard_id
        hub.gauge(sid, FLEET_LAYER, "pods.inflight", shard.inflight)
        hub.gauge(sid, FLEET_LAYER, "queue.depth", len(shard.queue))
        if (sid, FLEET_LAYER, "pods.provisioned") not in hub.gauges:
            hub.gauge(sid, FLEET_LAYER, "pods.provisioned", shard.pods)
            hub.gauge(sid, FLEET_LAYER, "queue.limit", shard.queue_limit)

    def _emit_done(self, shard: CoordinatorShard, tenant: str,
                   workload: str, transport: str,
                   latency_ns: Optional[int], ok: bool,
                   trace_id: str, submit_ns: int,
                   service_start_ns: Optional[int]) -> None:
        hub = _telemetry()
        if hub is None:
            return
        if ok:
            hub.count(shard.shard_id, PLATFORM_LAYER,
                      "invocations.completed")
            hub.event(shard.shard_id, PLATFORM_LAYER, "invocation.done",
                      tenant=tenant, workflow=workload,
                      transport=transport, latency_ns=latency_ns,
                      shard=shard.shard_id, trace_id=trace_id)
        else:
            hub.count(shard.shard_id, PLATFORM_LAYER,
                      "invocations.failed")
            hub.event(shard.shard_id, PLATFORM_LAYER,
                      "invocation.failed", tenant=tenant,
                      workflow=workload, transport=transport,
                      error="ShardUnavailable", shard=shard.shard_id,
                      trace_id=trace_id)
        # spans AFTER the event: the monitor pins exemplar trace ids
        # synchronously inside the event dispatch, so pinned invocations
        # keep their full span tree even under storage sampling
        now = self.engine.now
        root = hub.span(shard.shard_id, FLEET_LAYER, "invocation",
                        submit_ns, now, trace_id=trace_id,
                        tenant=tenant, workflow=workload,
                        transport=transport, ok=ok)
        if service_start_ns is not None and service_start_ns > submit_ns:
            hub.span(shard.shard_id, FLEET_LAYER, "queue.wait",
                     submit_ns, service_start_ns, parent_id=root,
                     trace_id=trace_id)
        if service_start_ns is not None:
            hub.span(shard.shard_id, FLEET_LAYER, "service",
                     service_start_ns, now, parent_id=root,
                     trace_id=trace_id)

    def _emit_rejected(self, now_ns: int, tenant: str, workload: str,
                       transport: str, reason: str,
                       shard: Optional[str]) -> None:
        hub = _telemetry()
        if hub is None:
            return
        machine = shard if shard is not None else "cluster"
        hub.count(machine, PLATFORM_LAYER, "invocations.rejected")
        hub.event(machine, PLATFORM_LAYER, "invocation.rejected",
                  tenant=tenant, workflow=workload, transport=transport,
                  reason=reason, shard=shard)

    # -- read-back -------------------------------------------------------------

    def stats(self, now_ns: Optional[int] = None) -> Dict[str, Any]:
        now_ns = self.engine.now if now_ns is None else now_ns
        shards = []
        for sid in sorted(self.shards):
            entry = self.shards[sid].stats(now_ns)
            scaler = self.autoscalers.get(sid)
            if scaler is not None:
                entry["autoscaler"] = scaler.stats()
            shards.append(entry)
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "admission": self.admission.to_dict(),
            "shards": shards,
        }
