"""On-heap object encoding: type tags, headers and payload layouts.

Every managed object occupies ``HEADER_SIZE + payload`` bytes at its virtual
address:

========  =====  ==========================================
offset    size   field
========  =====  ==========================================
0         4      type tag (u32)
4         4      flags (u32, reserved; Java variant uses it)
8         8      payload size in bytes (u64)
16        ...    payload
========  =====  ==========================================

Container payloads store *children as 8-byte little-endian virtual
addresses* — real pointers, which is what rmap exploits.
"""

from __future__ import annotations

import struct
from enum import IntEnum

HEADER_SIZE = 16
PTR_SIZE = 8
HEADER_STRUCT = struct.Struct("<IIQ")

_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


class TypeTag(IntEnum):
    """Type tags for on-heap objects."""

    NONE = 0
    BOOL = 1
    INT = 2
    FLOAT = 3
    STR = 4
    BYTES = 5
    LIST = 6
    TUPLE = 7
    DICT = 8
    NDARRAY = 9
    DATAFRAME = 10
    IMAGE = 11
    MLMODEL = 12
    TREE = 13


# Types whose payload embeds pointers to child objects.
CONTAINER_TAGS = frozenset({
    TypeTag.LIST, TypeTag.TUPLE, TypeTag.DICT,
    TypeTag.DATAFRAME, TypeTag.MLMODEL,
})

# Types providing a usable object iterator for semantic-aware prefetch
# (Section 4.4).  NDARRAY mimics numpy: no generic ``__iter__`` usable for
# traversal unless the 12-LoC wrapper is enabled on the heap.
DEFAULT_TRAVERSABLE = frozenset({
    TypeTag.NONE, TypeTag.BOOL, TypeTag.INT, TypeTag.FLOAT,
    TypeTag.STR, TypeTag.BYTES, TypeTag.LIST, TypeTag.TUPLE, TypeTag.DICT,
    TypeTag.DATAFRAME,
})

# dtype codes for NDARRAY payloads
DTYPE_CODES = {
    "float64": 0,
    "float32": 1,
    "int64": 2,
    "int32": 3,
    "uint8": 4,
    "bool": 5,
}
CODE_DTYPES = {v: k for k, v in DTYPE_CODES.items()}


def pack_header(tag: TypeTag, payload_size: int, flags: int = 0) -> bytes:
    return HEADER_STRUCT.pack(int(tag), flags, payload_size)


def unpack_header(raw: bytes):
    tag, flags, size = HEADER_STRUCT.unpack(raw)
    return TypeTag(tag), flags, size


def pack_u64(value: int) -> bytes:
    return _U64.pack(value)


def unpack_u64(raw: bytes, offset: int = 0) -> int:
    return _U64.unpack_from(raw, offset)[0]


def pack_i64(value: int) -> bytes:
    return _I64.pack(value)


def unpack_i64(raw: bytes, offset: int = 0) -> int:
    return _I64.unpack_from(raw, offset)[0]


def pack_f64(value: float) -> bytes:
    return _F64.pack(value)


def unpack_f64(raw: bytes, offset: int = 0) -> float:
    return _F64.unpack_from(raw, offset)[0]


def pack_pointers(addrs) -> bytes:
    """Encode a sequence of child addresses as consecutive u64 slots."""
    return b"".join(_U64.pack(a) for a in addrs)


def unpack_pointers(raw: bytes, count: int, offset: int = 0):
    return [_U64.unpack_from(raw, offset + i * PTR_SIZE)[0]
            for i in range(count)]
