"""The managed heap: boxing, loading and collecting objects in sim memory.

``box`` writes a Python value into simulated memory as a graph of tagged
objects whose references are 64-bit virtual addresses; ``load`` rebuilds the
Python value by chasing those pointers through the owning address space —
which transparently includes rmap'd remote ranges, so a consumer can ``load``
a producer's root pointer directly.

Fast paths: homogeneous primitive lists (the paper's ``list(int)``
microbenchmark reaches 5,000,000 elements) are laid out as one contiguous
stride-24 block and bulk-encoded/decoded.  Simulated cost is still charged
per element; only host CPU time is saved.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import RuntimeHeapError, SerializationError
from repro.mem.address_space import AddressSpace
from repro.mem.layout import AddressRange
from repro.mem.allocator import HeapAllocator
from repro.runtime import objects as enc
from repro.runtime.objects import (CODE_DTYPES, DTYPE_CODES,
                                   HEADER_SIZE, PTR_SIZE, TypeTag)
from repro.runtime.values import (DataFrameValue, ImageValue, MLModelValue,
                                  NdArrayValue, TreeValue)

_PRIM_SLOT = HEADER_SIZE + 8  # header + 8-byte payload, stride of packed runs
_PACK_MIN = 64                # minimum list length for the packed layout
_IMAGE_MODES = {"L": 0, "RGB": 1, "RGBA": 2}
_IMAGE_CODES = {v: k for k, v in _IMAGE_MODES.items()}

_CYCLE_SENTINEL = object()


class ManagedHeap:
    """One function container's object heap.

    The heap owns an allocator over its range, a root set for mark-sweep
    GC, and cost accounting through the address space's ledger.
    """

    def __init__(self, space: AddressSpace, rng: Optional[AddressRange] = None,
                 name: str = "heap", numpy_iterator: bool = True):
        if rng is None:
            if space.segments is None:
                raise RuntimeHeapError(
                    f"heap range not given and {space.name!r} has no "
                    "segment layout")
            rng = space.segments.heap
        self.space = space
        self.range = rng
        self.name = name
        self.allocator = HeapAllocator(rng)
        self.roots: Set[int] = set()
        self.objects_boxed = 0
        # Section 4.4: numpy ndarrays only traverse when the 12-LoC internal
        # iterator wrapper is enabled.
        self.numpy_iterator = numpy_iterator

    @property
    def cost(self):
        return self.space.cost

    @property
    def ledger(self):
        return self.space.ledger

    def owns(self, addr: int) -> bool:
        """True when *addr* lies in this heap's own range (vs a remote one)."""
        return addr in self.range

    # ------------------------------------------------------------------ box

    #: memo key pinning temporaries for the lifetime of one ``box()``.
    #: The memo is keyed by ``id(value)``; any value constructed *during*
    #: boxing (e.g. a column materialized as ``list(cells)``) must stay
    #: referenced until the top-level ``box()`` returns, or a later
    #: temporary can reuse the same ``id`` and take a stale memo hit —
    #: silently aliasing one object's heap data to another's.  ``id()``
    #: is always non-negative, so ``-1`` can never collide with a real key.
    _KEEPALIVE = -1

    def box(self, value: Any) -> int:
        """Write *value* into the heap; returns the root object's address."""
        memo: Dict[int, Any] = {self._KEEPALIVE: []}
        return self._box(value, memo)

    def _alloc(self, nbytes: int) -> int:
        self.ledger.charge(self.cost.alloc_ns, "alloc")
        return self.allocator.alloc(nbytes)

    def _write_object(self, addr: int, tag: TypeTag, payload: bytes) -> None:
        self.space.write(addr, enc.pack_header(tag, len(payload)) + payload)
        self.objects_boxed += 1

    def _box(self, value: Any, memo: Dict[int, int]) -> int:
        key = id(value)
        if key in memo:
            return memo[key]

        if value is None:
            return self._box_scalar(TypeTag.NONE, enc.pack_u64(0))
        if isinstance(value, bool):
            return self._box_scalar(TypeTag.BOOL, enc.pack_u64(int(value)))
        if isinstance(value, (int, np.integer)):
            return self._box_scalar(TypeTag.INT, enc.pack_i64(int(value)))
        if isinstance(value, (float, np.floating)):
            return self._box_scalar(TypeTag.FLOAT, enc.pack_f64(float(value)))
        if isinstance(value, str):
            return self._box_scalar(TypeTag.STR, value.encode("utf-8"))
        if isinstance(value, (bytes, bytearray)):
            return self._box_scalar(TypeTag.BYTES, bytes(value))
        if isinstance(value, (list, tuple)):
            return self._box_sequence(value, memo)
        if isinstance(value, dict):
            return self._box_dict(value, memo)
        if isinstance(value, np.ndarray):
            return self._box_ndarray(NdArrayValue(value))
        if isinstance(value, NdArrayValue):
            return self._box_ndarray(value)
        if isinstance(value, DataFrameValue):
            return self._box_dataframe(value, memo)
        if isinstance(value, ImageValue):
            return self._box_image(value)
        if isinstance(value, MLModelValue):
            return self._box_model(value, memo)
        if isinstance(value, TreeValue):
            return self._box_tree(value, memo)
        raise SerializationError(
            f"cannot box value of type {type(value).__name__}")

    def _box_scalar(self, tag: TypeTag, payload: bytes) -> int:
        addr = self._alloc(HEADER_SIZE + len(payload))
        self._write_object(addr, tag, payload)
        return addr

    def _box_sequence(self, value, memo: Dict[int, int]) -> int:
        tag = TypeTag.LIST if isinstance(value, list) else TypeTag.TUPLE
        packed = self._try_box_packed(value)
        if packed is not None:
            child_addrs = packed
        else:
            # allocate the container first so cycles resolve through memo
            addr = self._alloc(HEADER_SIZE + 8 + PTR_SIZE * len(value))
            memo[id(value)] = addr
            child_addrs = [self._box(child, memo) for child in value]
            payload = enc.pack_u64(len(value)) + enc.pack_pointers(child_addrs)
            self._write_object(addr, tag, payload)
            return addr
        addr = self._alloc(HEADER_SIZE + 8 + PTR_SIZE * len(value))
        memo[id(value)] = addr
        payload = enc.pack_u64(len(value)) + enc.pack_pointers(child_addrs)
        self._write_object(addr, tag, payload)
        return addr

    def _try_box_packed(self, value) -> Optional[List[int]]:
        """Bulk-box a long homogeneous int/float list as a stride-24 block."""
        n = len(value)
        if n < _PACK_MIN:
            return None
        if all(type(v) is int for v in value):
            tag, pack = TypeTag.INT, enc.pack_i64
        elif all(type(v) is float for v in value):
            tag, pack = TypeTag.FLOAT, enc.pack_f64
        else:
            return None
        base = self.allocator.alloc(n * _PRIM_SLOT)
        self.ledger.charge(n * self.cost.alloc_ns, "alloc")
        header = enc.pack_header(tag, 8)
        buf = bytearray(n * _PRIM_SLOT)
        for i, v in enumerate(value):
            off = i * _PRIM_SLOT
            buf[off:off + HEADER_SIZE] = header
            buf[off + HEADER_SIZE:off + _PRIM_SLOT] = pack(v)
        self.space.write(base, bytes(buf))
        self.objects_boxed += n
        return [base + i * _PRIM_SLOT for i in range(n)]

    def _box_dict(self, value: dict, memo: Dict[int, int]) -> int:
        addr = self._alloc(HEADER_SIZE + 8 + 2 * PTR_SIZE * len(value))
        memo[id(value)] = addr
        ptrs: List[int] = []
        for k, v in value.items():
            ptrs.append(self._box(k, memo))
            ptrs.append(self._box(v, memo))
        payload = enc.pack_u64(len(value)) + enc.pack_pointers(ptrs)
        self._write_object(addr, TypeTag.DICT, payload)
        return addr

    def _box_ndarray(self, value: NdArrayValue) -> int:
        arr = value.array
        dtype_name = arr.dtype.name
        if dtype_name not in DTYPE_CODES:
            raise SerializationError(f"unsupported ndarray dtype {dtype_name}")
        shape = arr.shape
        meta = enc.pack_u64(len(shape)) + b"".join(
            enc.pack_u64(d) for d in shape)
        meta += enc.pack_u64(DTYPE_CODES[dtype_name])
        payload = meta + arr.tobytes()
        addr = self._alloc(HEADER_SIZE + len(payload))
        self._write_object(addr, TypeTag.NDARRAY, payload)
        return addr

    def _box_dataframe(self, value: DataFrameValue,
                       memo: Dict[int, int]) -> int:
        ptrs: List[int] = []
        keepalive = memo[self._KEEPALIVE]
        for name, cells in value.columns.items():
            column = list(cells)
            # pin the materialized column: its id() is a memo key, so it
            # must outlive the whole box() call (see _KEEPALIVE)
            keepalive.append(column)
            ptrs.append(self._box(name, memo))
            ptrs.append(self._box(column, memo))
        payload = (enc.pack_u64(value.nrows) + enc.pack_u64(value.ncols)
                   + enc.pack_pointers(ptrs))
        addr = self._alloc(HEADER_SIZE + len(payload))
        memo[id(value)] = addr
        self._write_object(addr, TypeTag.DATAFRAME, payload)
        return addr

    def _box_image(self, value: ImageValue) -> int:
        payload = (enc.pack_u64(value.width) + enc.pack_u64(value.height)
                   + enc.pack_u64(_IMAGE_MODES[value.mode]) + value.pixels)
        addr = self._alloc(HEADER_SIZE + len(payload))
        self._write_object(addr, TypeTag.IMAGE, payload)
        return addr

    def _box_model(self, value: MLModelValue, memo: Dict[int, int]) -> int:
        tree_ptrs = [self._box_tree(t, memo) for t in value.trees]
        payload = (enc.pack_u64(value.n_features)
                   + enc.pack_u64(value.n_classes)
                   + enc.pack_u64(value.n_trees)
                   + enc.pack_pointers(tree_ptrs))
        addr = self._alloc(HEADER_SIZE + len(payload))
        memo[id(value)] = addr
        self._write_object(addr, TypeTag.MLMODEL, payload)
        return addr

    def _box_tree(self, value: TreeValue, memo: Dict[int, int]) -> int:
        key = id(value)
        if key in memo:
            return memo[key]
        arrays = [self._box_ndarray(NdArrayValue(a))
                  for a in (value.feature, value.threshold, value.left,
                            value.right, value.value)]
        payload = enc.pack_u64(5) + enc.pack_pointers(arrays)
        addr = self._alloc(HEADER_SIZE + len(payload))
        memo[key] = addr
        self._write_object(addr, TypeTag.TREE, payload)
        return addr

    # ----------------------------------------------------------------- load

    def header_of(self, addr: int) -> Tuple[TypeTag, int, int]:
        """(tag, flags, payload_size) of the object at *addr*."""
        return enc.unpack_header(self.space.read(addr, HEADER_SIZE))

    def payload_of(self, addr: int) -> bytes:
        _tag, _flags, size = self.header_of(addr)
        return self.space.read(addr + HEADER_SIZE, size)

    def object_span(self, addr: int) -> Tuple[int, int]:
        """(start, total bytes) of the object at *addr*."""
        _tag, _flags, size = self.header_of(addr)
        return addr, HEADER_SIZE + size

    def load(self, addr: int) -> Any:
        """Rebuild the Python value rooted at *addr* (may chase remote
        pointers through an rmap'd VMA)."""
        return self._load(addr, {})

    def _load(self, addr: int, memo: Dict[int, Any]) -> Any:
        if addr in memo:
            value = memo[addr]
            if value is _CYCLE_SENTINEL:
                raise SerializationError(
                    f"unsupported cycle through immutable object at "
                    f"{addr:#x}")
            return value
        tag, _flags, size = self.header_of(addr)
        if tag in (TypeTag.NONE, TypeTag.BOOL, TypeTag.INT, TypeTag.FLOAT,
                   TypeTag.STR, TypeTag.BYTES, TypeTag.NDARRAY,
                   TypeTag.IMAGE):
            value = self._load_leaf(tag, addr, size)
            memo[addr] = value
            return value
        if tag in (TypeTag.LIST, TypeTag.TUPLE):
            return self._load_sequence(tag, addr, size, memo)
        if tag == TypeTag.DICT:
            return self._load_dict(addr, size, memo)
        if tag == TypeTag.DATAFRAME:
            return self._load_dataframe(addr, size, memo)
        if tag == TypeTag.MLMODEL:
            return self._load_model(addr, size, memo)
        if tag == TypeTag.TREE:
            return self._load_tree(addr, size, memo)
        raise SerializationError(f"unknown tag {tag} at {addr:#x}")

    def _load_leaf(self, tag: TypeTag, addr: int, size: int) -> Any:
        payload = self.space.read(addr + HEADER_SIZE, size)
        if tag == TypeTag.NONE:
            return None
        if tag == TypeTag.BOOL:
            return bool(enc.unpack_u64(payload))
        if tag == TypeTag.INT:
            return enc.unpack_i64(payload)
        if tag == TypeTag.FLOAT:
            return enc.unpack_f64(payload)
        if tag == TypeTag.STR:
            return payload.decode("utf-8")
        if tag == TypeTag.BYTES:
            return payload
        if tag == TypeTag.NDARRAY:
            return self._decode_ndarray(payload)
        if tag == TypeTag.IMAGE:
            width = enc.unpack_u64(payload, 0)
            height = enc.unpack_u64(payload, 8)
            mode = _IMAGE_CODES[enc.unpack_u64(payload, 16)]
            return ImageValue(width, height, payload[24:], mode=mode)
        raise SerializationError(f"not a leaf tag: {tag}")  # pragma: no cover

    @staticmethod
    def _decode_ndarray(payload: bytes) -> NdArrayValue:
        ndim = enc.unpack_u64(payload, 0)
        shape = tuple(enc.unpack_u64(payload, 8 + 8 * i)
                      for i in range(ndim))
        code = enc.unpack_u64(payload, 8 + 8 * ndim)
        data = payload[16 + 8 * ndim:]
        arr = np.frombuffer(data, dtype=CODE_DTYPES[code]).reshape(shape)
        return NdArrayValue(arr.copy())

    def _child_pointers(self, addr: int, size: int, skip: int = 8
                        ) -> List[int]:
        payload = self.space.read(addr + HEADER_SIZE, size)
        count = (size - skip) // PTR_SIZE
        return enc.unpack_pointers(payload, count, offset=skip)

    def _load_sequence(self, tag: TypeTag, addr: int, size: int,
                       memo: Dict[int, Any]) -> Any:
        payload = self.space.read(addr + HEADER_SIZE, size)
        count = enc.unpack_u64(payload, 0)
        ptrs = enc.unpack_pointers(payload, count, offset=8)
        packed = self._try_load_packed(ptrs)
        if packed is None:
            packed = self._try_load_dense(ptrs)
        if packed is not None:
            value = packed if tag == TypeTag.LIST else tuple(packed)
            memo[addr] = value
            return value
        if tag == TypeTag.LIST:
            out: List[Any] = []
            memo[addr] = out
            out.extend(self._load(p, memo) for p in ptrs)
            return out
        memo[addr] = _CYCLE_SENTINEL
        value = tuple(self._load(p, memo) for p in ptrs)
        memo[addr] = value
        return value

    # Leaf tags decodable from a bulk region read.
    _LEAF_TAGS = frozenset({TypeTag.NONE, TypeTag.BOOL, TypeTag.INT,
                            TypeTag.FLOAT, TypeTag.STR, TypeTag.BYTES})

    def _try_load_dense(self, ptrs: List[int]) -> Optional[List]:
        """Bulk-decode leaf children allocated in one dense region.

        Column cells and dict entries are allocated back-to-back, so one
        region read replaces two reads per object.  Semantically identical
        to element-wise loading (same bytes, same fault behaviour); bails
        to the slow path when a child is a container or the region is
        sparse.
        """
        n = len(ptrs)
        if n < _PACK_MIN:
            return None
        lo, hi = min(ptrs), max(ptrs)
        if hi - lo > 256 * n:
            return None
        tag_hi, _flags, size_hi = self.header_of(hi)
        total = hi + HEADER_SIZE + size_hi - lo
        if total > 512 * n:
            return None
        raw = self.space.read(lo, total)
        out: List[Any] = []
        unpack_header = enc.unpack_header
        for p in ptrs:
            off = p - lo
            tag, _f, size = unpack_header(raw[off:off + HEADER_SIZE])
            if tag not in self._LEAF_TAGS:
                return None
            payload = raw[off + HEADER_SIZE:off + HEADER_SIZE + size]
            if tag == TypeTag.INT:
                out.append(enc.unpack_i64(payload))
            elif tag == TypeTag.STR:
                out.append(payload.decode("utf-8"))
            elif tag == TypeTag.FLOAT:
                out.append(enc.unpack_f64(payload))
            elif tag == TypeTag.BOOL:
                out.append(bool(enc.unpack_u64(payload)))
            elif tag == TypeTag.BYTES:
                out.append(payload)
            else:
                out.append(None)
        return out

    def _try_load_packed(self, ptrs: List[int]) -> Optional[List]:
        """Bulk-decode a stride-24 homogeneous primitive run."""
        n = len(ptrs)
        if n < _PACK_MIN:
            return None
        base = ptrs[0]
        if ptrs[-1] != base + (n - 1) * _PRIM_SLOT:
            return None
        # confirm the stride holds everywhere (cheap numpy check)
        arr = np.asarray(ptrs, dtype=np.uint64)
        if not bool(np.all(np.diff(arr) == _PRIM_SLOT)):
            return None
        tag, _flags, size = self.header_of(base)
        if size != 8 or tag not in (TypeTag.INT, TypeTag.FLOAT):
            return None
        raw = self.space.read(base, n * _PRIM_SLOT)
        words = np.frombuffer(raw, dtype=np.uint64).reshape(n, 3)
        # word 0 = tag|flags, word 1 = payload size; verify homogeneity
        if not bool(np.all(words[:, 0] == words[0, 0])):
            return None
        values = words[:, 2]
        if tag == TypeTag.INT:
            return [int(v) for v in values.astype(np.int64)]
        return [float(v) for v in values.view(np.float64)]

    def _load_dict(self, addr: int, size: int, memo: Dict[int, Any]) -> dict:
        ptrs = self._child_pointers(addr, size)
        dense = self._try_load_dense(ptrs)
        if dense is not None:
            value = dict(zip(dense[0::2], dense[1::2]))
            memo[addr] = value
            return value
        out: Dict[Any, Any] = {}
        memo[addr] = out
        for i in range(0, len(ptrs), 2):
            key = self._load(ptrs[i], memo)
            out[key] = self._load(ptrs[i + 1], memo)
        return out

    def _load_dataframe(self, addr: int, size: int,
                        memo: Dict[int, Any]) -> DataFrameValue:
        payload = self.space.read(addr + HEADER_SIZE, size)
        ncols = enc.unpack_u64(payload, 8)
        ptrs = enc.unpack_pointers(payload, 2 * ncols, offset=16)
        columns: Dict[str, List] = {}
        for i in range(0, len(ptrs), 2):
            name = self._load(ptrs[i], memo)
            columns[name] = self._load(ptrs[i + 1], memo)
        value = DataFrameValue(columns)
        memo[addr] = value
        return value

    def _load_model(self, addr: int, size: int,
                    memo: Dict[int, Any]) -> MLModelValue:
        payload = self.space.read(addr + HEADER_SIZE, size)
        n_features = enc.unpack_u64(payload, 0)
        n_classes = enc.unpack_u64(payload, 8)
        n_trees = enc.unpack_u64(payload, 16)
        ptrs = enc.unpack_pointers(payload, n_trees, offset=24)
        trees = [self._load(p, memo) for p in ptrs]
        value = MLModelValue(trees, n_features, n_classes)
        memo[addr] = value
        return value

    def _load_tree(self, addr: int, size: int,
                   memo: Dict[int, Any]) -> TreeValue:
        ptrs = self._child_pointers(addr, size)
        arrays = [self._load(p, memo).array for p in ptrs]
        value = TreeValue(*arrays)
        memo[addr] = value
        return value

    # ------------------------------------------------------------- children

    def children(self, addr: int) -> List[int]:
        """Child object addresses of the object at *addr*.

        Raises :class:`SerializationError` for types without a usable
        iterator (numpy without the wrapper) — callers fall back to
        non-prefetch mode (Section 4.4).
        """
        tag, _flags, size = self.header_of(addr)
        if tag == TypeTag.NDARRAY and not self.numpy_iterator:
            raise SerializationError(
                "ndarray provides no __iter__ for traversal "
                "(enable numpy_iterator)")
        if tag in (TypeTag.LIST, TypeTag.TUPLE, TypeTag.DICT, TypeTag.TREE):
            return self._child_pointers(addr, size)
        if tag == TypeTag.DATAFRAME:
            return self._child_pointers(addr, size, skip=16)
        if tag == TypeTag.MLMODEL:
            return self._child_pointers(addr, size, skip=24)
        return []

    # ------------------------------------------------------------------- GC

    def add_root(self, addr: int) -> None:
        self.roots.add(addr)

    def remove_root(self, addr: int) -> None:
        self.roots.discard(addr)

    def gc(self) -> int:
        """Mark-sweep over the local heap; returns objects' bytes freed.

        Addresses outside this heap's range — i.e. on a remote, rmap'd heap —
        are *skipped* during marking, per the hybrid GC design (Section 4.3):
        remote lifetimes are managed coarsely by the remote-root proxy.
        """
        marked: Set[int] = set()
        stack = [a for a in self.roots if self.owns(a)]
        while stack:
            addr = stack.pop()
            if addr in marked:
                continue
            marked.add(addr)
            for child in self.children(addr):
                if child not in marked and self.owns(child):
                    stack.append(child)
        freed = 0
        if marked:
            marked_sorted = np.asarray(sorted(marked), dtype=np.uint64)
        else:
            marked_sorted = np.asarray([], dtype=np.uint64)
        for start in list(self.allocator.allocations_dict()):
            size = self.allocator.allocation_size(start)
            if self._block_marked(marked_sorted, start, size):
                continue
            freed += self.allocator.free(start)
        return freed

    @staticmethod
    def _block_marked(marked_sorted: np.ndarray, start: int,
                      size: int) -> bool:
        """True when any marked object address falls inside the block
        (packed primitive runs share one allocation)."""
        if len(marked_sorted) == 0:
            return False
        i = int(np.searchsorted(marked_sorted, start, side="left"))
        return i < len(marked_sorted) and int(marked_sorted[i]) < start + size

    # ------------------------------------------------------------ utilities

    def bytes_in_use(self) -> int:
        return self.allocator.bytes_in_use

    def count_reachable(self, root: int) -> int:
        """Number of objects reachable from *root* (sub-object counting)."""
        seen: Set[int] = set()
        stack = [root]
        while stack:
            addr = stack.pop()
            if addr in seen:
                continue
            seen.add(addr)
            stack.extend(c for c in self.children(addr) if c not in seen)
        return len(seen)
