"""The (de)serialization baseline — a pickle-equivalent for managed heaps.

``serialize`` walks every object reachable from the root (exactly what
``pickle`` does to PyObjects), transforming pointers into stream indices and
copying payloads into one contiguous byte array.  ``deserialize``
reconstructs the graph on a target heap, re-allocating every object and
fixing pointers back up.

Costs charged match the paper's measurements (Section 2.4): ~25 ns per
sub-object to serialize, ~30 ns to deserialize, plus single-threaded memcpy
bandwidth of ~1.6 GB/s for the byte copies.  A 3.2 MB dataframe with 401,839
sub-objects therefore costs ~10 ms to serialize and ~12 ms to deserialize.

Wire format (little-endian)::

    stream  := u64 object_count, record*
    record  := OBJ u32 tag, u64 payload_len, payload-with-indices
             | PACKED u32 elem_tag, u64 count, 8*count raw values

Packed records encode the heap's contiguous primitive runs in bulk; the
per-element cost is still charged, only host CPU time is saved.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SerializationError
from repro.obs.telemetry import current as _telemetry
from repro.runtime import objects as enc
from repro.runtime.heap import _PACK_MIN, _PRIM_SLOT, ManagedHeap
from repro.runtime.objects import (CONTAINER_TAGS, HEADER_SIZE, PTR_SIZE,
                                   TypeTag)
from repro.units import transfer_time_ns

_REC_OBJ = 0
_REC_PACKED = 1
_REC_HEADER = struct.Struct("<BIQ")  # kind, tag, count-or-len


class SerializedState:
    """The output of :func:`Serializer.serialize`."""

    def __init__(self, data: bytes, object_count: int):
        self.data = data
        self.object_count = object_count

    @property
    def nbytes(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return (f"SerializedState({self.nbytes} bytes, "
                f"{self.object_count} objects)")


class Serializer:
    """Pickle-equivalent serializer over managed heaps."""

    def __init__(self, category_prefix: str = ""):
        self.prefix = category_prefix

    # ------------------------------------------------------------ serialize

    def serialize(self, heap: ManagedHeap, root: int) -> SerializedState:
        """Flatten the graph rooted at *root* into a byte stream."""
        cost = heap.cost
        ledger = heap.ledger
        category = self.prefix + "serialize"

        # Queue entries are ("obj", addr) or ("packed", tag, raw, count);
        # entries are appended in index-assignment order, so draining FIFO
        # emits records in exactly index order (what deserialize assumes).
        index: Dict[int, int] = {root: 0}
        queue: List[Tuple] = [("obj", root)]
        chunks: List[bytes] = []
        qpos = 0
        while qpos < len(queue):
            entry = queue[qpos]
            qpos += 1
            if entry[0] == "packed":
                _kind, elem_tag, raw, count = entry
                chunks.append(_REC_HEADER.pack(_REC_PACKED, int(elem_tag),
                                               count))
                chunks.append(raw)
                continue
            addr = entry[1]
            tag, _flags, size = heap.header_of(addr)
            if tag in (TypeTag.LIST, TypeTag.TUPLE):
                self._emit_sequence(heap, addr, tag, size, index, queue,
                                    chunks)
            elif tag in CONTAINER_TAGS or tag == TypeTag.TREE:
                self._emit_container(heap, addr, tag, size, index, queue,
                                     chunks)
            else:
                payload = heap.space.read(addr + HEADER_SIZE, size)
                chunks.append(_REC_HEADER.pack(_REC_OBJ, int(tag), size))
                chunks.append(payload)

        data = struct.pack("<Q", len(index)) + b"".join(chunks)
        per_object = len(index) * cost.serialize_per_object_ns
        copy = transfer_time_ns(len(data), cost.serialize_copy_gbps)
        ledger.charge(per_object, category)
        ledger.charge(copy, category)
        hub = _telemetry()
        if hub is not None:
            hub.op(heap.space.name, "runtime", category, ledger,
                   per_object + copy, objects=len(index), bytes=len(data))
        return SerializedState(data, len(index))

    def _assign(self, ptr: int, index: Dict[int, int],
                queue: List[Tuple]) -> int:
        idx = index.get(ptr)
        if idx is None:
            idx = len(index)
            index[ptr] = idx
            queue.append(("obj", ptr))
        return idx

    def _emit_container(self, heap: ManagedHeap, addr: int, tag: TypeTag,
                        size: int, index: Dict[int, int], queue: List[int],
                        chunks: List[bytes]) -> None:
        skip = {TypeTag.DATAFRAME: 16, TypeTag.MLMODEL: 24}.get(tag, 8)
        payload = heap.space.read(addr + HEADER_SIZE, size)
        nptrs = (size - skip) // PTR_SIZE
        ptrs = enc.unpack_pointers(payload, nptrs, offset=skip)
        idx_words = b"".join(struct.pack("<Q", self._assign(p, index, queue))
                             for p in ptrs)
        chunks.append(_REC_HEADER.pack(_REC_OBJ, int(tag), size))
        chunks.append(payload[:skip] + idx_words)

    def _emit_sequence(self, heap: ManagedHeap, addr: int, tag: TypeTag,
                       size: int, index: Dict[int, int], queue: List[Tuple],
                       chunks: List[bytes]) -> None:
        """Emit a LIST/TUPLE; contiguous primitive children become one
        queued packed record (unless any element was already reached
        through another reference, where packing would break indexing)."""
        payload = heap.space.read(addr + HEADER_SIZE, size)
        count = enc.unpack_u64(payload, 0)
        ptrs = enc.unpack_pointers(payload, count, offset=8)
        run = self._detect_packed_run(heap, ptrs)
        if run is not None and not any(p in index for p in ptrs):
            elem_tag, raw = run
            base_idx = len(index)
            for i, p in enumerate(ptrs):
                index[p] = base_idx + i
            queue.append(("packed", elem_tag, raw, len(ptrs)))
            idx_words = b"".join(struct.pack("<Q", base_idx + i)
                                 for i in range(len(ptrs)))
        else:
            idx_words = b"".join(
                struct.pack("<Q", self._assign(p, index, queue))
                for p in ptrs)
        chunks.append(_REC_HEADER.pack(_REC_OBJ, int(tag), size))
        chunks.append(payload[:8] + idx_words)

    @staticmethod
    def _detect_packed_run(heap: ManagedHeap, ptrs: List[int]
                           ) -> Optional[Tuple[TypeTag, bytes]]:
        n = len(ptrs)
        if n < _PACK_MIN:
            return None
        base = ptrs[0]
        arr = np.asarray(ptrs, dtype=np.uint64)
        if not bool(np.all(np.diff(arr) == _PRIM_SLOT)):
            return None
        tag, _flags, size = heap.header_of(base)
        if size != 8 or tag not in (TypeTag.INT, TypeTag.FLOAT):
            return None
        raw = heap.space.read(base, n * _PRIM_SLOT)
        words = np.frombuffer(raw, dtype=np.uint64).reshape(n, 3)
        if not bool(np.all(words[:, 0] == words[0, 0])):
            return None
        return tag, words[:, 2].tobytes()

    # ---------------------------------------------------------- deserialize

    def deserialize(self, heap: ManagedHeap, state: SerializedState) -> int:
        """Reconstruct the graph on *heap*; returns the new root address."""
        cost = heap.cost
        ledger = heap.ledger
        category = self.prefix + "deserialize"
        data = state.data
        if len(data) < 8:
            raise SerializationError("truncated stream: missing header")
        (total,) = struct.unpack_from("<Q", data, 0)
        # sanity bound: even maximally packed records need >= 8 bytes per
        # object, so a larger count is a forged/corrupt header (and would
        # otherwise drive an unbounded host allocation)
        if total > len(data):
            raise SerializationError(
                f"corrupt stream: claims {total} objects in "
                f"{len(data)} bytes")
        pos = 8

        # phase 1: scan records, allocate every object
        records: List[Tuple] = []
        addrs: List[Optional[int]] = [None] * total
        next_index = 0
        while pos < len(data):
            if pos + _REC_HEADER.size > len(data):
                raise SerializationError("truncated record header")
            kind, tag, length = _REC_HEADER.unpack_from(data, pos)
            pos += _REC_HEADER.size
            if kind == _REC_OBJ:
                if pos + length > len(data):
                    raise SerializationError("truncated object payload")
                payload = data[pos:pos + length]
                pos += length
                addr = heap.allocator.alloc(HEADER_SIZE + length)
                addrs[next_index] = addr
                records.append((_REC_OBJ, TypeTag(tag), addr, payload))
                next_index += 1
            elif kind == _REC_PACKED:
                count = length
                if pos + 8 * count > len(data):
                    raise SerializationError("truncated packed record")
                raw = data[pos:pos + 8 * count]
                pos += 8 * count
                base = heap.allocator.alloc(count * _PRIM_SLOT)
                for i in range(count):
                    addrs[next_index + i] = base + i * _PRIM_SLOT
                records.append((_REC_PACKED, TypeTag(tag), base, raw, count))
                next_index += count
            else:
                raise SerializationError(f"corrupt stream: kind {kind}")
        if next_index != total:
            raise SerializationError(
                f"corrupt stream: {next_index} records, expected {total}")

        # phase 2: write payloads with indices resolved to addresses;
        # consecutive allocations coalesce into one buffered write
        pend_addr = None
        pend = bytearray()

        def flush():
            nonlocal pend_addr
            if pend_addr is not None and pend:
                heap.space.write(pend_addr, bytes(pend))
            pend_addr = None
            pend.clear()

        def emit(addr: int, data: bytes) -> None:
            nonlocal pend_addr
            if pend_addr is not None and pend_addr + len(pend) == addr:
                pend.extend(data)
                return
            flush()
            pend_addr = addr
            pend.extend(data)

        for rec in records:
            if rec[0] == _REC_OBJ:
                _kind, tag, addr, payload = rec
                if tag in CONTAINER_TAGS or tag == TypeTag.TREE:
                    payload = self._fix_pointers(tag, payload, addrs)
                emit(addr, enc.pack_header(tag, len(payload)) + payload)
                heap.objects_boxed += 1
            else:
                _kind, tag, base, raw, count = rec
                header = enc.pack_header(tag, 8)
                buf = bytearray(count * _PRIM_SLOT)
                for i in range(count):
                    off = i * _PRIM_SLOT
                    buf[off:off + HEADER_SIZE] = header
                    buf[off + HEADER_SIZE:off + _PRIM_SLOT] = \
                        raw[i * 8:(i + 1) * 8]
                emit(base, bytes(buf))
                heap.objects_boxed += count
        flush()

        # the per-object constant subsumes allocator work (as measured for
        # pickle in Section 2.4: ~12 ms for ~400 k sub-objects)
        per_object = total * cost.deserialize_per_object_ns
        copy = transfer_time_ns(len(data), cost.serialize_copy_gbps)
        ledger.charge(per_object, category)
        ledger.charge(copy, category)
        hub = _telemetry()
        if hub is not None:
            hub.op(heap.space.name, "runtime", category, ledger,
                   per_object + copy, objects=total, bytes=len(data))
        if not addrs or addrs[0] is None:
            raise SerializationError("empty stream")
        return addrs[0]

    @staticmethod
    def _fix_pointers(tag: TypeTag, payload: bytes,
                      addrs: List[Optional[int]]) -> bytes:
        skip = {TypeTag.DATAFRAME: 16, TypeTag.MLMODEL: 24}.get(tag, 8)
        nptrs = (len(payload) - skip) // PTR_SIZE
        indices = enc.unpack_pointers(payload, nptrs, offset=skip)
        fixed = b"".join(struct.pack("<Q", addrs[i]) for i in indices)
        return payload[:skip] + fixed
