"""Remote-root proxies: the hybrid GC's handle on a remote heap.

After ``rmap``, the consumer runtime wraps the producer's root pointer in a
:class:`RemoteRoot` — the "special object on the local heap pointing to the
root object of the state" of Section 4.3.  Destroying (releasing) it unmaps
the whole remote heap in one step: zero-cost coarse-grained GC.

Assigning a remote sub-object into a local object would dangle once the
root is released, so :meth:`adopt` performs the paper's copy-to-local-heap
scheme — also the mechanism for cascading state transfer (Section 4.4).
"""

from __future__ import annotations

from typing import Any

from repro.errors import DanglingRemoteReference
from repro.kernel.kernel import RmapHandle
from repro.runtime.heap import ManagedHeap
from repro.units import transfer_time_ns


class RemoteRoot:
    """A local handle to a state living on a remote, rmap'd heap."""

    def __init__(self, heap: ManagedHeap, handle: RmapHandle,
                 root_addr: int):
        self.heap = heap
        self.handle = handle
        self.root_addr = root_addr
        self.released = False

    # --- access -------------------------------------------------------------

    def load(self) -> Any:
        """Materialize the remote state as a host value (reads fault pages
        in on demand through the remote pager)."""
        self._check_live()
        return self.heap.load(self.root_addr)

    def children(self):
        self._check_live()
        return self.heap.children(self.root_addr)

    def adopt(self) -> int:
        """Deep-copy the remote graph onto the local heap; returns the new
        local root address.

        This is the copy-on-local-assignment rule: after adoption the value
        survives :meth:`release`, and can be re-registered for the next
        function in a cascading chain.
        """
        self._check_live()
        value = self.heap.load(self.root_addr)
        local = self.heap.box(value)
        _start, span = self.heap.object_span(local)
        self.heap.ledger.charge(
            transfer_time_ns(span, self.heap.cost.local_copy_gbps),
            "adopt-copy")
        return local

    # --- lifecycle ------------------------------------------------------------

    def release(self) -> None:
        """Unmap the remote heap (frees all its local page frames).

        Idempotent; the one-step release is what makes remote GC zero-cost
        compared to tracing a remote heap over the network.
        """
        if self.released:
            return
        self.handle.unmap()
        self.released = True

    def __enter__(self) -> "RemoteRoot":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def _check_live(self) -> None:
        if self.released:
            raise DanglingRemoteReference(
                f"remote root {self.root_addr:#x} used after release")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "released" if self.released else "live"
        return f"<RemoteRoot {self.root_addr:#x} {state}>"
