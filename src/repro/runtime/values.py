"""Host-side value classes for complex managed types.

These are the Python-level stand-ins for the libraries the paper's workloads
use (numpy, pandas, PIL, LightGBM).  They exist so tests can build object
graphs, round-trip them through heaps/serializers, and compare for equality.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


class NdArrayValue:
    """A numpy-ndarray-like value: one contiguous buffer plus shape/dtype.

    Like real numpy, it serializes as a single large buffer with very few
    sub-objects — and (Section 4.4) it does *not* expose a generic object
    iterator, so semantic-aware prefetch needs the wrapped internal iterator.
    """

    def __init__(self, array: np.ndarray):
        self.array = np.ascontiguousarray(array)

    @property
    def nbytes(self) -> int:
        return self.array.nbytes

    @property
    def shape(self):
        return self.array.shape

    def __eq__(self, other) -> bool:
        return (isinstance(other, NdArrayValue)
                and self.array.shape == other.array.shape
                and self.array.dtype == other.array.dtype
                and np.array_equal(self.array, other.array))

    def __hash__(self):  # pragma: no cover - not used as dict key
        return id(self)

    def __repr__(self) -> str:
        return f"NdArrayValue(shape={self.array.shape}, " \
               f"dtype={self.array.dtype})"


class DataFrameValue:
    """A pandas-dataframe-like value: named columns of boxed cells.

    Cells are individually boxed objects on the heap, reproducing the paper's
    observation that a 3.2 MB dataframe decomposes into ~400 k sub-objects
    (Section 2.4) and is therefore brutally expensive to (de)serialize.
    """

    def __init__(self, columns: Dict[str, List]):
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        self.columns = {str(k): list(v) for k, v in columns.items()}

    @property
    def nrows(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def ncols(self) -> int:
        return len(self.columns)

    def column(self, name: str) -> List:
        return self.columns[name]

    def row(self, i: int) -> Dict[str, object]:
        return {name: col[i] for name, col in self.columns.items()}

    def sub_object_count(self) -> int:
        """Boxed cells plus per-column lists and names (serializer work)."""
        return sum(len(v) + 2 for v in self.columns.values()) + 1

    def __eq__(self, other) -> bool:
        return (isinstance(other, DataFrameValue)
                and self.columns == other.columns)

    def __hash__(self):  # pragma: no cover
        return id(self)

    def __repr__(self) -> str:
        return f"DataFrameValue({self.nrows}x{self.ncols})"


class ImageValue:
    """A PIL-Image-like value: mode, dimensions and one raw pixel buffer."""

    def __init__(self, width: int, height: int, pixels: bytes,
                 mode: str = "L"):
        bpp = {"L": 1, "RGB": 3, "RGBA": 4}[mode]
        if len(pixels) != width * height * bpp:
            raise ValueError(
                f"pixel buffer {len(pixels)} != {width}x{height}x{bpp}")
        self.width = width
        self.height = height
        self.mode = mode
        self.pixels = bytes(pixels)

    @property
    def nbytes(self) -> int:
        return len(self.pixels)

    def __eq__(self, other) -> bool:
        return (isinstance(other, ImageValue)
                and (self.width, self.height, self.mode, self.pixels)
                == (other.width, other.height, other.mode, other.pixels))

    def __hash__(self):  # pragma: no cover
        return id(self)

    def __repr__(self) -> str:
        return f"ImageValue({self.width}x{self.height} {self.mode})"


class MLModelValue:
    """A LightGBM-like tree-ensemble model.

    Each tree is stored as flat numpy node arrays (feature, threshold,
    left, right, leaf value) — a moderate number of medium-sized buffers,
    matching how a trained booster serializes.
    """

    def __init__(self, trees: Sequence["TreeValue"], n_features: int,
                 n_classes: int = 2):
        self.trees = list(trees)
        self.n_features = int(n_features)
        self.n_classes = int(n_classes)

    @property
    def n_trees(self) -> int:
        return len(self.trees)

    def nbytes(self) -> int:
        return sum(t.nbytes() for t in self.trees)

    def predict_margin(self, x: np.ndarray) -> float:
        """Sum of per-tree outputs for one feature vector."""
        return float(sum(t.predict(x) for t in self.trees))

    def __eq__(self, other) -> bool:
        return (isinstance(other, MLModelValue)
                and self.n_features == other.n_features
                and self.n_classes == other.n_classes
                and self.trees == other.trees)

    def __hash__(self):  # pragma: no cover
        return id(self)

    def __repr__(self) -> str:
        return f"MLModelValue({self.n_trees} trees, " \
               f"{self.n_features} features)"


class TreeValue:
    """One decision tree in structure-of-arrays form.

    ``feature[i] < 0`` marks node *i* as a leaf whose prediction is
    ``value[i]``; internal nodes branch to ``left``/``right`` on
    ``x[feature] <= threshold``.
    """

    def __init__(self, feature: np.ndarray, threshold: np.ndarray,
                 left: np.ndarray, right: np.ndarray, value: np.ndarray):
        n = len(feature)
        if not (len(threshold) == len(left) == len(right)
                == len(value) == n):
            raise ValueError("tree arrays must have equal length")
        self.feature = np.asarray(feature, dtype=np.int32)
        self.threshold = np.asarray(threshold, dtype=np.float64)
        self.left = np.asarray(left, dtype=np.int32)
        self.right = np.asarray(right, dtype=np.int32)
        self.value = np.asarray(value, dtype=np.float64)

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    def nbytes(self) -> int:
        return (self.feature.nbytes + self.threshold.nbytes
                + self.left.nbytes + self.right.nbytes + self.value.nbytes)

    def predict(self, x: np.ndarray) -> float:
        i = 0
        while self.feature[i] >= 0:
            if x[self.feature[i]] <= self.threshold[i]:
                i = int(self.left[i])
            else:
                i = int(self.right[i])
        return float(self.value[i])

    def __eq__(self, other) -> bool:
        return (isinstance(other, TreeValue)
                and np.array_equal(self.feature, other.feature)
                and np.array_equal(self.threshold, other.threshold)
                and np.array_equal(self.left, other.left)
                and np.array_equal(self.right, other.right)
                and np.array_equal(self.value, other.value))

    def __hash__(self):  # pragma: no cover
        return id(self)
