"""Semantic-aware object traversal for prefetching (Section 4.4).

The producer-side runtime walks the objects reachable from a state's root to
compute precisely which virtual pages hold the state; the consumer
doorbell-batch-reads exactly those pages in one round-trip.

Traversal runs at *language* speed — iterating a plain Python list touches
every element PyObject through ``__iter__``/``__next__`` (~60 ns each here),
which is why prefetch is **not** always a win for many-small-object types
like ``list(int)``, ``list(str)`` and ``dict`` (Fig 11a).  Typed containers
expose internal block iterators instead: ndarray buffers, image pixels and
dataframe column blocks are covered at per-block cost (the paper's
"12 LoC wrapper" around numpy's internal iterator).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.errors import SerializationError
from repro.mem.layout import page_round_down
from repro.runtime.heap import _PACK_MIN, _PRIM_SLOT, ManagedHeap
from repro.runtime.objects import HEADER_SIZE, TypeTag
from repro.units import PAGE_SIZE


class TraversalResult:
    """Pages (and traversal-step count) covering one state.

    ``objects`` maps lower-cased TypeTag names to ``[count, bytes]`` for
    the objects the walk visited; element runs a block iterator covered
    without visiting appear under the pseudo-tag ``"packed"``.  The map
    is a free by-product of the walk (no extra reads, no extra charges)
    and feeds lineage's per-object byte attribution.
    """

    def __init__(self, page_addrs: List[int], object_count: int,
                 objects: Optional[Dict[str, List[int]]] = None):
        self.page_addrs = page_addrs
        self.object_count = object_count
        self.objects = objects if objects is not None else {}

    @property
    def page_count(self) -> int:
        return len(self.page_addrs)

    @property
    def nbytes(self) -> int:
        return self.page_count * PAGE_SIZE


class ObjectTraverser:
    """Computes the page set of a state by walking its object graph."""

    def __init__(self, heap: ManagedHeap,
                 max_objects: Optional[int] = None):
        self.heap = heap
        # Section 4.4: a threshold bounds traversal cost; exceeding it makes
        # the producer fall back to non-prefetch mode.
        self.max_objects = max_objects

    # -- helpers -------------------------------------------------------------

    def _add_span(self, pages: Set[int], start: int, nbytes: int) -> None:
        first = page_round_down(start)
        last = page_round_down(start + nbytes - 1)
        pages.update(range(first, last + 1, PAGE_SIZE))

    def _packed_block(self, ptrs: List[int]):
        """(base, nbytes) when *ptrs* form a contiguous stride-24 run."""
        n = len(ptrs)
        if n < _PACK_MIN:
            return None
        arr = np.asarray(ptrs, dtype=np.uint64)
        if not bool(np.all(np.diff(arr) == _PRIM_SLOT)):
            return None
        return int(ptrs[0]), n * _PRIM_SLOT

    def _dense_block(self, ptrs: List[int]):
        """(base, nbytes) when *ptrs* sit in one dense allocation region
        (e.g. a string column's cells, allocated back to back).  The
        column's block iterator then covers them without visiting each
        element."""
        n = len(ptrs)
        if n < _PACK_MIN:
            return None
        lo, hi = min(ptrs), max(ptrs)
        if hi - lo > 256 * n:
            return None
        _tag, _flags, size_hi = self.heap.header_of(hi)
        return lo, hi + HEADER_SIZE + size_hi - lo

    # -- traversal -------------------------------------------------------------

    def traverse(self, root: int) -> Optional[TraversalResult]:
        """Page list for the state rooted at *root*.

        Returns ``None`` when traversal is not possible (a type without an
        iterator) or not worthwhile (step count exceeds the threshold) —
        the caller then falls back to demand paging.
        """
        heap = self.heap
        cost = heap.cost
        pages: Set[int] = set()
        seen: Set[int] = set()
        objects: Dict[str, List[int]] = {}
        steps = 0
        charge = 0
        stack = [(root, False)]
        try:
            while stack:
                addr, is_column = stack.pop()
                if addr in seen:
                    continue
                seen.add(addr)
                steps += 1
                if self.max_objects is not None \
                        and steps > self.max_objects:
                    heap.ledger.charge(charge, "traverse")
                    return None
                tag, _flags, size = heap.header_of(addr)
                self._add_span(pages, addr, HEADER_SIZE + size)
                slot = objects.setdefault(tag.name.lower(), [0, 0])
                slot[0] += 1
                slot[1] += HEADER_SIZE + size
                if is_column and tag == TypeTag.LIST:
                    # typed column: internal block iterator covers the
                    # whole element run at per-block cost
                    ptrs = heap.children(addr)
                    block = self._packed_block(ptrs) \
                        or self._dense_block(ptrs)
                    if block is not None:
                        base, nbytes = block
                        self._add_span(pages, base, nbytes)
                        run = objects.setdefault("packed", [0, 0])
                        run[0] += len(ptrs)
                        run[1] += nbytes
                        charge += cost.traverse_per_block_ns
                        continue
                    stack.extend((p, False) for p in ptrs)
                    charge += len(ptrs) * cost.traverse_per_object_ns
                    continue
                charge += cost.traverse_per_object_ns
                if tag == TypeTag.DATAFRAME:
                    ptrs = heap.children(addr)
                    # alternating (name, column-list) pointers
                    for i, p in enumerate(ptrs):
                        stack.append((p, i % 2 == 1))
                else:
                    stack.extend((p, False) for p in heap.children(addr))
        except SerializationError:
            # type without an iterator (e.g. numpy without the wrapper)
            heap.ledger.charge(charge, "traverse")
            return None
        heap.ledger.charge(charge, "traverse")
        return TraversalResult(sorted(pages), steps, objects)


def pages_of_state(heap: ManagedHeap, root: int,
                   max_objects: Optional[int] = None
                   ) -> Optional[TraversalResult]:
    """Convenience wrapper over :class:`ObjectTraverser`."""
    return ObjectTraverser(heap, max_objects=max_objects).traverse(root)
