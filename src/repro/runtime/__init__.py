"""The RMMAP-extended managed language runtime.

A miniature CPython-like object runtime whose heap lives *inside* simulated
memory: every object has a 16-byte header and stores references as 64-bit
little-endian virtual addresses.  Because addresses are real, a consumer that
rmaps the producer's range can chase the same pointers untranslated — the
property that eliminates (de)serialization (Section 2.4, Figure 4).

Components:

* :mod:`repro.runtime.objects` — type tags and on-heap object encoding;
* :mod:`repro.runtime.values` — host-side value classes (ndarray, dataframe,
  image, ML model) used to build and compare object graphs;
* :mod:`repro.runtime.heap` — the managed heap: box/load, mark-sweep GC;
* :mod:`repro.runtime.serializer` — the pickle-equivalent baseline;
* :mod:`repro.runtime.traverse` — semantic-aware traversal for prefetching;
* :mod:`repro.runtime.proxy` — remote-root handles and the hybrid GC glue;
* :mod:`repro.runtime.java` — the Java-flavoured runtime variant.
"""

from repro.runtime.heap import ManagedHeap
from repro.runtime.objects import TypeTag
from repro.runtime.proxy import RemoteRoot
from repro.runtime.serializer import SerializedState, Serializer
from repro.runtime.traverse import ObjectTraverser
from repro.runtime.values import (DataFrameValue, ImageValue, MLModelValue,
                                  NdArrayValue)

__all__ = [
    "ManagedHeap",
    "TypeTag",
    "Serializer",
    "SerializedState",
    "ObjectTraverser",
    "RemoteRoot",
    "NdArrayValue",
    "DataFrameValue",
    "ImageValue",
    "MLModelValue",
]
