"""The Java-flavoured runtime variant (Sections 4.3, 5.7).

RMMAP is language-agnostic; the paper demonstrates it on JDK 11 as well as
Python.  The differences that matter to the evaluation are modeled here:

* **costs** — JVM (de)serialization (``ObjectOutputStream``-style) has higher
  per-object transform cost than pickle, and JIT-compiled function bodies run
  somewhat faster;
* **class-data sharing (CDS)** — type metadata (klass structures) is mapped
  read-only at the *same* address in every function instance, so remotely
  mapped objects' klass pointers resolve locally without any network reads
  (Section 4.3 "Type safety").
"""

from __future__ import annotations

import hashlib

from repro.mem.address_space import AddressSpace
from repro.mem.layout import AddressRange
from repro.mem.vma import FileVMA
from repro.runtime.heap import ManagedHeap
from repro.units import PAGE_SIZE, CostModel, DEFAULT_COST_MODEL

#: Where the shared CDS archive is mapped in *every* container — a fixed
#: address outside all planned function ranges, like the JVM's default
#: archive base.
CDS_BASE = 0x8000_0000_0000
CDS_PAGES = 16


def java_cost_model(base: CostModel = DEFAULT_COST_MODEL) -> CostModel:
    """Cost constants for the JDK runtime variant."""
    return base.scaled(
        serialize_per_object_ns=55,    # ObjectOutputStream reflection walk
        deserialize_per_object_ns=70,
        alloc_ns=25,                   # TLAB bump allocation
        traverse_per_object_ns=8,
    )


def cds_archive_bytes() -> bytes:
    """Deterministic stand-in content for the shared klass metadata."""
    out = bytearray()
    seed = b"repro-cds-archive"
    while len(out) < CDS_PAGES * PAGE_SIZE:
        seed = hashlib.sha256(seed).digest()
        out += seed
    return bytes(out[:CDS_PAGES * PAGE_SIZE])


def map_cds_archive(space: AddressSpace) -> FileVMA:
    """Map the shared type-metadata archive at the canonical address."""
    vma = FileVMA(AddressRange(CDS_BASE, CDS_BASE + CDS_PAGES * PAGE_SIZE),
                  cds_archive_bytes(), name="cds")
    space.map_vma(vma)
    return vma


class JavaHeap(ManagedHeap):
    """A managed heap whose container also maps the CDS archive.

    Object layout is shared with the Python heap (both runtimes in the
    paper box references as machine words); only costs and the CDS mapping
    differ.
    """

    def __init__(self, space: AddressSpace, rng=None, name: str = "jheap"):
        super().__init__(space, rng=rng, name=name, numpy_iterator=True)
        self.cds = map_cds_archive(space)

    def klass_pointer(self, tag) -> int:
        """The shared-archive address of a type's metadata — identical in
        every function instance thanks to CDS."""
        return CDS_BASE + int(tag) * 64
