"""Auto-triage: from a burn-rate alert to a ranked root-cause report.

When a :class:`~repro.obs.monitor.FleetMonitor` alert fires, this module
answers the question the alert cannot: *why*.  For each alert it builds
an :class:`AlertContext` over the alert window:

* **exemplars** — the worst-k / median-band / failed trace ids the
  monitor's :class:`~repro.obs.monitor.ExemplarReservoir` retained (and
  the hub pinned full span trees for);
* **faults** — injected chaos faults and shard deaths inside the window
  (``platform``/``shard.failed`` events, ``chaos``/``fault`` events,
  with the ``shards.failed`` counter series as a cap-proof fallback);
* **saturation** — which resource timelines
  (:mod:`repro.obs.timeline`) crossed their saturation threshold inside
  the window, per :class:`SaturationSpec`;
* **lineage** — when the run tracked page provenance
  (:mod:`repro.obs.lineage`), transfer edges active inside the window
  whose moved bytes were partly prefetch waste, ranked by waste
  fraction;
* **critical path & diff** — the slowest exemplar's bottleneck ranking
  (:func:`repro.obs.profile.critical_path_report`) and its span-tree
  diff against the median exemplar
  (:func:`repro.obs.diff.diff_traces`).

All of it folds into one ``evidence`` list ranked by severity —
injected faults first (they explain everything downstream), then
saturation crossings by how far past the threshold they went, then
exemplar-derived localization.  Everything is computed from
deterministic inputs, so the report is byte-identical at a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.diff import diff_traces
from repro.obs.monitor import Alert, FleetMonitor
from repro.obs.profile import (build_span_tree, critical_path_report,
                               sampling_diagnostic)
from repro.obs.telemetry import Telemetry

TRIAGE_SCHEMA_VERSION = 1

#: Severity assigned to an injected fault inside the alert window — a
#: large finite value (JSON-safe) so fault evidence always outranks any
#: saturation or exemplar signal.
FAULT_SEVERITY = 1e9

#: Cap on diff rows embedded in a report (full diffs of deep trees would
#: dwarf the rest of the payload).
MAX_DIFF_ROWS = 8


@dataclass(frozen=True)
class SaturationSpec:
    """One resource series and its saturation test.

    ``mode`` selects how the window statistic is judged:

    * ``high_frac`` — saturated when the window **max** reaches
      ``threshold`` of capacity (``capacity_name``'s timeline peak, or
      the hub gauge of that name);
    * ``low_frac`` — starved when the window **min** falls to
      ``threshold`` of capacity or below (token exhaustion);
    * ``peak_frac`` — anomalous when the window max reaches
      ``threshold`` of the series' own lifetime peak (no capacity
      companion needed);
    * ``delta`` — suspicious when a monotone counter *grew* inside the
      window at all (rejections, failures).
    """

    layer: str
    name: str
    mode: str  # high_frac | low_frac | peak_frac | delta
    capacity_name: Optional[str] = None
    threshold: float = 0.9
    label: str = ""


#: The built-in saturation checks, one per utilization gauge the fleet /
#: platform / mem / net layers publish.  Order is presentation only —
#: evidence is re-ranked by severity.
DEFAULT_SATURATION_SPECS: Tuple[SaturationSpec, ...] = (
    SaturationSpec("fleet.shard", "pods.inflight", "high_frac",
                   capacity_name="pods.provisioned", threshold=1.0,
                   label="pod slots exhausted"),
    SaturationSpec("fleet.shard", "queue.depth", "high_frac",
                   capacity_name="queue.limit", threshold=0.8,
                   label="wait queue near capacity"),
    SaturationSpec("fleet.admission", "tokens.level_milli", "low_frac",
                   capacity_name="tokens.burst_milli", threshold=0.1,
                   label="admission tokens exhausted"),
    SaturationSpec("fleet.admission", "rejections.total", "delta",
                   label="admission rejections during window"),
    SaturationSpec("platform", "invocations.inflight", "peak_frac",
                   threshold=0.9, label="coordinator inflight at peak"),
    SaturationSpec("platform", "shards.failed", "delta",
                   label="shard death during window"),
    SaturationSpec("mem", "frames.resident", "high_frac",
                   capacity_name="frames.capacity", threshold=0.9,
                   label="physical memory near capacity"),
    SaturationSpec("net.rdma", "bytes.inflight", "peak_frac",
                   threshold=0.9, label="RDMA payload at lifetime peak"),
)


@dataclass
class AlertContext:
    """Everything triage gathered about one alert, ranked."""

    alert: Alert
    window_start_ns: int
    window_end_ns: int
    exemplars: Optional[Dict[str, Any]] = None
    faults: List[Dict[str, Any]] = field(default_factory=list)
    saturation: List[Dict[str, Any]] = field(default_factory=list)
    lineage: List[Dict[str, Any]] = field(default_factory=list)
    critical_path: Optional[Dict[str, Any]] = None
    diff: Optional[Dict[str, Any]] = None
    #: the unified ranking: every fault / saturation / exemplar signal
    #: as one list, most severe first
    evidence: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "alert": self.alert.to_dict(),
            "window_start_ns": self.window_start_ns,
            "window_end_ns": self.window_end_ns,
            "exemplars": self.exemplars,
            "faults": self.faults,
            "saturation": self.saturation,
            "lineage": self.lineage,
            "critical_path": self.critical_path,
            "diff": self.diff,
            "evidence": self.evidence,
        }


# -- fault correlation ---------------------------------------------------------


def _fault_scan(hub: Telemetry, t0_ns: int,
                t1_ns: int) -> List[Dict[str, Any]]:
    """Injected faults and shard deaths inside ``[t0, t1]``."""
    faults: List[Dict[str, Any]] = []
    seen = set()
    for event in hub.events:
        if not t0_ns <= event["ts"] <= t1_ns:
            continue
        layer, name = event["layer"], event["name"]
        if (layer, name) == ("platform", "shard.failed") \
                or (layer == "chaos" and name == "fault"):
            key = (event["machine"], layer, name, event["ts"])
            if key in seen:
                continue
            seen.add(key)
            faults.append({"ts_ns": event["ts"],
                           "machine": event["machine"],
                           "layer": layer, "name": name,
                           "attributes": dict(event["attributes"])})
    # the event log is capped; the shards.failed counter series survives
    # the cap, so recover deaths the log dropped
    for (machine, layer, name), series in sorted(hub.series.items()):
        if layer != "platform" or name != "shards.failed":
            continue
        for ts, _value in series.samples:
            if not t0_ns <= ts <= t1_ns:
                continue
            key = (machine, layer, "shard.failed", ts)
            if key in seen:
                continue
            seen.add(key)
            faults.append({"ts_ns": ts, "machine": machine,
                           "layer": layer, "name": "shard.failed",
                           "attributes": {"shard": machine,
                                          "source": "counter-series"}})
    faults.sort(key=lambda f: (f["ts_ns"], f["machine"], f["name"]))
    return faults


# -- saturation correlation ----------------------------------------------------


def _capacity_of(hub: Telemetry, machine: str,
                 spec: SaturationSpec) -> Optional[int]:
    if spec.capacity_name is None:
        return None
    recorder = hub.timelines
    if recorder is not None:
        timeline = recorder.get(machine, spec.layer, spec.capacity_name)
        if timeline is not None and timeline.peak is not None:
            return timeline.peak
    return hub.gauges.get((machine, spec.layer, spec.capacity_name))


def _saturation_scan(hub: Telemetry, specs: Sequence[SaturationSpec],
                     t0_ns: int, t1_ns: int) -> List[Dict[str, Any]]:
    """Every (spec, machine) whose series crossed its threshold."""
    recorder = hub.timelines
    if recorder is None:
        return []
    findings: List[Dict[str, Any]] = []
    for spec in specs:
        for machine, layer, name in recorder.keys():
            if layer != spec.layer or name != spec.name:
                continue
            timeline = recorder.get(machine, layer, name)
            entry = {"machine": machine, "layer": layer, "name": name,
                     "mode": spec.mode, "label": spec.label,
                     "threshold": spec.threshold}
            severity = 0.0
            if spec.mode == "delta":
                grew = timeline.delta_between(t0_ns, t1_ns)
                if grew > 0:
                    severity = 1.0 + grew
                    entry["delta"] = grew
            else:
                stats = timeline.stats_between(t0_ns, t1_ns)
                if stats is None:
                    continue
                if spec.mode == "peak_frac":
                    peak = timeline.peak or 0
                    if peak > 0 \
                            and stats["max"] >= spec.threshold * peak:
                        severity = stats["max"] / (spec.threshold * peak)
                        entry.update(window_max=stats["max"],
                                     lifetime_peak=peak)
                else:
                    cap = _capacity_of(hub, machine, spec)
                    if cap is None or cap <= 0:
                        continue
                    entry["capacity"] = cap
                    if spec.mode == "high_frac":
                        limit = spec.threshold * cap
                        if stats["max"] >= limit:
                            severity = stats["max"] / max(limit, 1e-9)
                            entry["window_max"] = stats["max"]
                    elif spec.mode == "low_frac":
                        limit = spec.threshold * cap
                        if stats["min"] <= limit:
                            severity = (limit + 1) / (stats["min"] + 1)
                            entry["window_min"] = stats["min"]
            if severity >= 1.0:
                entry["severity"] = round(severity, 6)
                findings.append(entry)
    findings.sort(key=lambda f: (-f["severity"], f["machine"],
                                 f["layer"], f["name"]))
    return findings


# -- lineage correlation -------------------------------------------------------


def _lineage_scan(hub: Telemetry, t0_ns: int,
                  t1_ns: int) -> List[Dict[str, Any]]:
    """Transfer edges active inside the alert window whose moved bytes
    were partly prefetch waste, worst waste fraction first.

    Only available when the run tracked lineage
    (:meth:`~repro.obs.telemetry.Telemetry.enable_lineage`); returns
    ``[]`` otherwise — triage never *requires* lineage.
    """
    if hub.lineage is None:
        return []
    findings: List[Dict[str, Any]] = []
    report = hub.lineage.report()
    for key, edge in report["edges"].items():
        window = edge.get("window") or {}
        first, last = window.get("first_ns"), window.get("last_ns")
        if first is None or last is None:
            continue
        if last < t0_ns or first > t1_ns:
            continue
        moved = edge.get("bytes_moved", 0)
        waste = edge.get("prefetch_waste", {}).get("bytes", 0)
        if moved <= 0 or waste <= 0:
            continue
        findings.append({
            "edge": key,
            "transport": edge["transport"],
            "bytes_moved": moved,
            "prefetch_waste_bytes": waste,
            "waste_fraction": round(waste / moved, 6),
            "amplification": edge.get("amplification"),
        })
    findings.sort(key=lambda f: (-f["waste_fraction"], f["edge"]))
    return findings


# -- per-alert assembly --------------------------------------------------------


def _exemplar_analysis(hub: Telemetry,
                       exemplars: Optional[Dict[str, Any]]
                       ) -> Tuple[Optional[Dict[str, Any]],
                                  Optional[Dict[str, Any]]]:
    """(critical-path report of the worst exemplar, diff vs median)."""
    if not exemplars or not exemplars.get("worst"):
        return None, None
    worst_tid = exemplars["worst"][0]["trace_id"]
    try:
        report = critical_path_report(hub, worst_tid)
    except ValueError:
        # if span sampling dropped the exemplar's tree, say so instead
        # of silently producing a report with no exemplar evidence
        hint = sampling_diagnostic(hub, worst_tid)
        if hint is not None:
            raise ValueError(
                f"triage cannot analyze the worst exemplar: {hint}"
            ) from None
        return None, None  # trace genuinely absent (pinned too late)
    diff = None
    median = exemplars.get("median")
    if median is not None and median["trace_id"] != worst_tid:
        try:
            baseline = build_span_tree(hub, median["trace_id"])
            candidate = build_span_tree(hub, worst_tid)
            diff = diff_traces(baseline, candidate)
            diff["rows"] = diff["rows"][:MAX_DIFF_ROWS]
        except ValueError:
            diff = None
    return report, diff


def _rank_evidence(ctx: AlertContext) -> List[Dict[str, Any]]:
    evidence: List[Dict[str, Any]] = []
    for fault in ctx.faults:
        evidence.append({
            "kind": "fault", "severity": FAULT_SEVERITY,
            "machine": fault["machine"], "name": fault["name"],
            "label": f"injected fault on {fault['machine']}",
            "detail": fault,
        })
    for finding in ctx.saturation:
        evidence.append({
            "kind": "saturation", "severity": finding["severity"],
            "machine": finding["machine"],
            "name": f"{finding['layer']}/{finding['name']}",
            "label": finding["label"], "detail": finding,
        })
    for finding in ctx.lineage:
        evidence.append({
            "kind": "lineage", "severity": finding["waste_fraction"],
            "machine": finding["transport"],
            "name": finding["edge"],
            "label": (f"{finding['waste_fraction'] * 100:.1f}% of "
                      f"transferred bytes were prefetch waste on edge "
                      f"{finding['edge'].split('@', 1)[0]}"),
            "detail": finding,
        })
    if ctx.critical_path and ctx.critical_path["bottlenecks"]:
        top = ctx.critical_path["bottlenecks"][0]
        evidence.append({
            "kind": "exemplar-critical-path", "severity": top["share"],
            "machine": top["machine"],
            "name": f"{top['layer']}/{top['name']}",
            "label": (f"{top['share'] * 100:.1f}% of the slowest "
                      f"exemplar's critical path"),
            "detail": top,
        })
    if ctx.diff and ctx.diff["rows"]:
        top = ctx.diff["rows"][0]
        if top["delta_ns"] > 0:
            evidence.append({
                "kind": "exemplar-diff",
                "severity": top["share_of_regression"],
                "machine": top["location"].split(":", 1)[0],
                "name": top["location"],
                "label": (f"{top['share_of_regression'] * 100:.1f}% of "
                          f"worst-vs-median regression"),
                "detail": top,
            })
    evidence.sort(key=lambda e: (-e["severity"], e["kind"],
                                 e["machine"], e["name"]))
    for entry in evidence:
        entry["severity"] = round(entry["severity"], 6)
    return evidence


def triage_alert(hub: Telemetry, monitor: FleetMonitor, alert: Alert,
                 specs: Optional[Sequence[SaturationSpec]] = None
                 ) -> AlertContext:
    """Build the ranked :class:`AlertContext` for one alert."""
    specs = DEFAULT_SATURATION_SPECS if specs is None else specs
    t1 = alert.cleared_ns if alert.cleared_ns is not None \
        else monitor.last_ts
    t0 = max(0, alert.fired_ns - alert.slo.long_window_ns)
    ctx = AlertContext(alert=alert, window_start_ns=t0,
                       window_end_ns=t1)
    ctx.exemplars = monitor.exemplars_for(alert.key, now_ns=t1)
    ctx.faults = _fault_scan(hub, t0, t1)
    ctx.saturation = _saturation_scan(hub, specs, t0, t1)
    ctx.lineage = _lineage_scan(hub, t0, t1)
    ctx.critical_path, ctx.diff = _exemplar_analysis(hub, ctx.exemplars)
    ctx.evidence = _rank_evidence(ctx)
    return ctx


def triage_report(hub: Telemetry, monitor: FleetMonitor,
                  specs: Optional[Sequence[SaturationSpec]] = None
                  ) -> Dict[str, Any]:
    """Triage every alert the monitor raised; JSON-ready and
    byte-identical at a fixed seed."""
    contexts = [triage_alert(hub, monitor, alert, specs=specs)
                for alert in monitor.alerts]
    return {
        "schema_version": TRIAGE_SCHEMA_VERSION,
        "generated_at_ns": monitor.last_ts,
        "alert_count": len(contexts),
        "alerts": [ctx.to_dict() for ctx in contexts],
    }


def render_triage(report: Dict[str, Any]) -> str:
    """The triage report as ranked text tables."""
    from repro.analysis.report import Table

    lines: List[str] = []
    if not report["alerts"]:
        return ("triage: no alerts fired "
                f"(as of {report['generated_at_ns'] / 1e6:.3f} ms "
                "simulated)")
    for i, ctx in enumerate(report["alerts"]):
        alert = ctx["alert"]
        key = "/".join((alert["tenant"], alert["workflow"],
                        alert["transport"]))
        cleared = (f"{alert['cleared_ns'] / 1e6:.3f} ms"
                   if alert["cleared_ns"] is not None else "ACTIVE")
        lines.append(
            f"alert {i + 1}/{report['alert_count']}: "
            f"{alert['slo']} on {key} — fired "
            f"{alert['fired_ns'] / 1e6:.3f} ms, cleared {cleared} "
            f"(burn {alert['burn_long']:.2f}L/"
            f"{alert['burn_short']:.2f}S)")
        table = Table(
            f"ranked evidence [{ctx['window_start_ns'] / 1e6:.3f} ms "
            f".. {ctx['window_end_ns'] / 1e6:.3f} ms]",
            ["rank", "kind", "machine", "signal", "severity", "label"])
        for rank, entry in enumerate(ctx["evidence"], start=1):
            table.add_row(rank, entry["kind"], entry["machine"],
                          entry["name"], f"{entry['severity']:g}",
                          entry["label"])
        if ctx["evidence"]:
            lines.append(table.render())
        else:
            lines.append("  no evidence found in the alert window")
        exemplars = ctx.get("exemplars")
        if exemplars and exemplars.get("worst"):
            worst = ", ".join(
                f"{e['trace_id']} ({e['latency_ns'] / 1e6:.3f} ms)"
                for e in exemplars["worst"])
            lines.append(f"  worst exemplars: {worst}")
            median = exemplars.get("median")
            if median is not None:
                lines.append(
                    f"  median exemplar: {median['trace_id']} "
                    f"({median['latency_ns'] / 1e6:.3f} ms)")
    return "\n".join(lines)
