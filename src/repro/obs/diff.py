"""Differential root-causing: *why* did this run get slower?

Two deterministic runs of the same workload produce structurally
identical span trees; when one regresses, the delta lives in specific
nodes.  This module aligns two runs — or two persisted bench snapshots —
and ranks where the regression came from:

* :func:`diff_traces` joins two span trees on their root-to-node
  *location path* (tuples of normalized ``(machine, layer, name)``, via
  :func:`repro.obs.profile.path_table`) and computes per-path self/wait/
  total deltas;
* :func:`diff_snapshots` joins two ``BENCH_<n>.json`` snapshots on
  ``workload × transport × (machine, layer, name)`` critical-path leaves
  (schema v2's ``path_ns_by_location``) plus the end-to-end headline;
* :func:`render_diff` prints either report as a ranked table, regression
  suspects first.

Each row carries ``share_of_regression`` — its slowdown as a fraction of
the total slowdown across all regressed rows — so the first row *is* the
root-cause candidate.  The bench gate (``repro bench-check``) attaches a
snapshot diff automatically when it fails, and ``RunResult.diff(other)``
exposes the trace diff on the run façade.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.profile import SpanNode, path_table

DIFF_SCHEMA_VERSION = 1


def _rank(rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Rank regressions (positive delta) first, largest first; attach
    ``share_of_regression`` over the positive-delta mass."""
    regressed = sum(r["delta_ns"] for r in rows if r["delta_ns"] > 0)
    for row in rows:
        row["share_of_regression"] = (
            round(row["delta_ns"] / regressed, 6)
            if regressed > 0 and row["delta_ns"] > 0 else 0.0)
    rows.sort(key=lambda r: (-r["delta_ns"], r["location"]))
    return rows


def _loc_str(location) -> str:
    machine, layer, name = location
    return f"{machine}:{layer}/{name}"


def diff_traces(baseline: SpanNode, candidate: SpanNode,
                min_delta_ns: int = 0) -> Dict[str, Any]:
    """Align two span trees by location path; rank per-node deltas.

    ``self_ns`` deltas are the signal (a node's *own* simulated work);
    ``total_ns`` deltas are carried for context (a parent's total moves
    whenever any descendant's does).  Paths present in only one tree
    count with the other side at zero, so added/removed phases surface
    rather than vanish.
    """
    base, cand = path_table(baseline), path_table(candidate)
    rows: List[Dict[str, Any]] = []
    for path in sorted(set(base) | set(cand), key=lambda p: (len(p), p)):
        b = base.get(path, {"self_ns": 0, "wait_ns": 0, "total_ns": 0,
                            "count": 0})
        c = cand.get(path, {"self_ns": 0, "wait_ns": 0, "total_ns": 0,
                            "count": 0})
        delta_self = c["self_ns"] - b["self_ns"]
        if abs(delta_self) < min_delta_ns and b["count"] == c["count"]:
            continue
        rows.append({
            "path": [_loc_str(loc) for loc in path],
            "location": _loc_str(path[-1]),
            "depth": len(path),
            "baseline_self_ns": b["self_ns"],
            "candidate_self_ns": c["self_ns"],
            "delta_ns": delta_self,
            "delta_total_ns": c["total_ns"] - b["total_ns"],
            "delta_wait_ns": c["wait_ns"] - b["wait_ns"],
            "baseline_count": b["count"],
            "candidate_count": c["count"],
            "status": ("added" if not b["count"] else
                       "removed" if not c["count"] else "common"),
        })
    return {
        "schema_version": DIFF_SCHEMA_VERSION,
        "kind": "trace",
        "baseline_total_ns": baseline.duration_ns,
        "candidate_total_ns": candidate.duration_ns,
        "delta_total_ns": candidate.duration_ns - baseline.duration_ns,
        "rows": _rank(rows),
    }


def _entry_locations(entry: Dict[str, Any]) -> Dict[str, int]:
    """``path_ns_by_location`` of one snapshot entry (v2), falling back
    to the per-layer split (v1-era summaries) so old/new snapshots still
    diff at reduced resolution."""
    cp = entry.get("critical_path", {})
    locations = cp.get("path_ns_by_location")
    if locations:
        return dict(locations)
    return {f"*:{layer}/*": ns
            for layer, ns in cp.get("path_ns_by_layer", {}).items()}


def diff_snapshots(baseline: Dict[str, Any], candidate: Dict[str, Any]
                   ) -> Dict[str, Any]:
    """Root-cause a snapshot pair: per ``workload × transport``, rank
    critical-path ``(machine, layer, name)`` deltas; report end-to-end
    movement alongside.

    Unlike :func:`repro.bench.regression.compare`, this never judges —
    no tolerances, no pass/fail — it only explains where the simulated
    nanoseconds moved.  Mismatched operating points are refused for the
    same reason the gate refuses them.
    """
    for key in ("seed", "scale"):
        if baseline.get(key) != candidate.get(key) \
                and baseline.get(key) is not None:
            raise ValueError(
                f"snapshots disagree on {key}: {baseline.get(key)!r} vs "
                f"{candidate.get(key)!r}; diff them at one operating "
                f"point")

    e2e: List[Dict[str, Any]] = []
    rows: List[Dict[str, Any]] = []
    b_wl = baseline.get("workloads", {})
    c_wl = candidate.get("workloads", {})
    for workload in sorted(set(b_wl) & set(c_wl)):
        for transport in sorted(set(b_wl[workload])
                                & set(c_wl[workload])):
            b_entry = b_wl[workload][transport]
            c_entry = c_wl[workload][transport]
            b_e2e = b_entry.get("e2e_ns", 0)
            c_e2e = c_entry.get("e2e_ns", 0)
            e2e.append({
                "workload": workload, "transport": transport,
                "baseline_ns": b_e2e, "candidate_ns": c_e2e,
                "delta_ns": c_e2e - b_e2e,
                "rel_change": (round((c_e2e - b_e2e) / b_e2e, 6)
                               if b_e2e else 0.0),
            })
            b_loc = _entry_locations(b_entry)
            c_loc = _entry_locations(c_entry)
            for loc in sorted(set(b_loc) | set(c_loc)):
                b_ns = b_loc.get(loc, 0)
                c_ns = c_loc.get(loc, 0)
                if b_ns == c_ns:
                    continue
                rows.append({
                    "workload": workload, "transport": transport,
                    "location": loc,
                    "baseline_ns": b_ns, "candidate_ns": c_ns,
                    "delta_ns": c_ns - b_ns,
                    "status": ("added" if not b_ns else
                               "removed" if not c_ns else "common"),
                })
    e2e.sort(key=lambda r: (-r["delta_ns"], r["workload"],
                            r["transport"]))
    return {
        "schema_version": DIFF_SCHEMA_VERSION,
        "kind": "snapshot",
        "baseline_total_ns": sum(r["baseline_ns"] for r in e2e),
        "candidate_total_ns": sum(r["candidate_ns"] for r in e2e),
        "delta_total_ns": sum(r["delta_ns"] for r in e2e),
        "e2e": e2e,
        "rows": _rank(rows),
    }


def diff_snapshot_paths(baseline_path: str,
                        candidate_path: str) -> Dict[str, Any]:
    """Load two snapshot files and :func:`diff_snapshots` them."""
    from repro.bench.snapshot import load_snapshot
    return diff_snapshots(load_snapshot(baseline_path),
                          load_snapshot(candidate_path))


def render_diff(report: Dict[str, Any], top: int = 12) -> str:
    """Either diff report as ranked text, regression suspects first."""
    lines = [
        f"run diff ({report['kind']}): "
        f"{report['baseline_total_ns'] / 1e6:.3f} ms -> "
        f"{report['candidate_total_ns'] / 1e6:.3f} ms "
        f"({report['delta_total_ns'] / 1e6:+.3f} ms)"]
    for row in report.get("e2e", []):
        if row["delta_ns"]:
            lines.append(
                f"  e2e {row['workload']}/{row['transport']}: "
                f"{row['baseline_ns'] / 1e6:.3f} -> "
                f"{row['candidate_ns'] / 1e6:.3f} ms "
                f"({row['rel_change']:+.2%})")
    rows = report["rows"]
    if not rows:
        lines.append("no per-location deltas (runs are identical)")
        return "\n".join(lines)
    lines.append(f"{'share':>7}  {'delta ms':>10}  root cause")
    for row in rows[:top]:
        prefix = ""
        if "workload" in row:
            prefix = f"{row['workload']}/{row['transport']} "
        lines.append(
            f"{row['share_of_regression']:>6.1%}  "
            f"{row['delta_ns'] / 1e6:>+10.3f}  "
            f"{prefix}{row['location']}"
            + ("" if row["status"] == "common"
               else f" [{row['status']}]"))
    rest = rows[top:]
    if rest:
        lines.append(f"        ... {len(rest)} more locations")
    return "\n".join(lines)
