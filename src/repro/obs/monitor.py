"""Fleet-scale monitoring over the telemetry hub, in simulated time.

The profiler (:mod:`repro.obs.profile`) explains one invocation after the
fact; this module watches a whole fleet run *while it happens* — a
thousand-request Fig 12 load test, a chaos drill — and keeps the
distributional view the paper's headline results are made of:

* :class:`PercentileSketch` — a mergeable log2-bucket quantile sketch
  (16 linear sub-buckets per power of two, HdrHistogram-style) whose
  estimates carry a *tested* relative-error bound
  (:data:`SKETCH_RELATIVE_ERROR`, 3.125 %) against exact sorted
  percentiles;
* :class:`WindowedSketch` / :class:`WindowedCounter` — sliding windows
  over simulated nanoseconds, sliced into ring buckets so eviction is a
  pure function of the simulated clock;
* :class:`FleetMonitor` — subscribes to the hub's event stream
  (``Telemetry.add_listener``), keeps per-``(tenant, workflow,
  transport)`` latency sketches and request/error rates, and evaluates
  :class:`~repro.obs.slo.SLO` objectives with multi-window burn-rate
  alerting.  Alert transitions fire *inside* simulated time: the firing
  timestamp is the simulated instant of the observation that tripped the
  budget, so the same seed produces the same alert timeline, byte for
  byte.

Like every other ``repro.obs`` surface the monitor is a pure observer:
it never touches a ledger, the event queue, or the clock, so a run is
bit-identical with monitoring on or off.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.slo import SLO, DEFAULT_SLOS
from repro.obs.telemetry import Telemetry

#: Linear sub-buckets per power-of-two range.  With ``K`` sub-buckets the
#: mid-point estimate of any bucket is within ``1 / (2 K)`` of every value
#: the bucket covers, so quantile estimates carry that relative-error
#: bound (values below ``2 K`` are bucketed exactly — zero error).
SKETCH_SUBBUCKETS = 16

#: The documented (and property-tested) relative error bound of
#: :meth:`PercentileSketch.quantile` vs the exact sorted percentile.
SKETCH_RELATIVE_ERROR = 1.0 / (2 * SKETCH_SUBBUCKETS)

#: Key every fleet series is labeled by.
FleetKey = Tuple[str, str, str]  # (tenant, workflow, transport)

_SUB_SHIFT = SKETCH_SUBBUCKETS.bit_length() - 1  # log2(K)
_LINEAR_MAX = 2 * SKETCH_SUBBUCKETS  # values < this are bucketed exactly


class PercentileSketch:
    """A mergeable quantile sketch over non-negative integers.

    Values below ``2 * SKETCH_SUBBUCKETS`` occupy exact linear buckets;
    larger values land in one of ``SKETCH_SUBBUCKETS`` equal-width
    sub-buckets of their power-of-two range ``[2^(e-1), 2^e)``.  Bucket
    keys are integers whose order equals value order, so quantile
    extraction is one sorted walk.  Everything is integer arithmetic —
    recording, merging and querying are exact and deterministic.
    """

    __slots__ = ("buckets", "count", "sum", "min", "max")

    def __init__(self):
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    @staticmethod
    def bucket_key(value: int) -> int:
        """The (value-ordered) bucket key covering *value*."""
        v = int(value)
        if v < 0:
            v = 0
        if v < _LINEAR_MAX:
            return v
        e = v.bit_length()  # v in [2^(e-1), 2^e)
        sub = (v - (1 << (e - 1))) >> (e - 1 - _SUB_SHIFT)
        return (e << _SUB_SHIFT) | sub

    @staticmethod
    def bucket_estimate(key: int) -> int:
        """The mid-point estimate for bucket *key* (exact when linear)."""
        if key < _LINEAR_MAX:
            return key
        e = key >> _SUB_SHIFT
        sub = key & (SKETCH_SUBBUCKETS - 1)
        width = 1 << (e - 1 - _SUB_SHIFT)
        lo = (1 << (e - 1)) + sub * width
        return lo + width // 2

    def record(self, value: int) -> None:
        v = max(0, int(value))
        key = self.bucket_key(v)
        self.buckets[key] = self.buckets.get(key, 0) + 1
        self.count += 1
        self.sum += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v

    def merge(self, other: "PercentileSketch") -> "PercentileSketch":
        """Fold *other* into this sketch (the mergeability contract)."""
        for key, n in other.buckets.items():
            self.buckets[key] = self.buckets.get(key, 0) + n
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max
        return self

    @classmethod
    def merged(cls, sketches: Iterable["PercentileSketch"]
               ) -> "PercentileSketch":
        out = cls()
        for sketch in sketches:
            out.merge(sketch)
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> int:
        """Estimate the value at rank ``max(1, ceil(q * count))``.

        The exact value at that rank lies inside the returned bucket, so
        ``|estimate - exact| <= SKETCH_RELATIVE_ERROR * exact`` whenever
        the exact value is outside the (error-free) linear region.
        """
        if not self.count:
            return 0
        target = min(self.count, max(1, math.ceil(q * self.count)))
        seen = 0
        for key in sorted(self.buckets):
            seen += self.buckets[key]
            if seen >= target:
                return self.bucket_estimate(key)
        return self.bucket_estimate(max(self.buckets))

    def to_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "sum": self.sum,
                "min": self.min, "max": self.max,
                "p50": self.quantile(0.50), "p99": self.quantile(0.99),
                "p999": self.quantile(0.999)}


class WindowedSketch:
    """A sliding-window percentile sketch over simulated time.

    The window is sliced into ``slices`` ring buckets of
    ``window_ns / slices`` nanoseconds; each slice holds one
    :class:`PercentileSketch`.  Recording and querying evict slices older
    than the window *as a pure function of the supplied timestamp*, so
    the same event stream always yields the same estimates.
    """

    __slots__ = ("window_ns", "slices", "slice_ns", "_ring", "_min_idx",
                 "lifetime")

    def __init__(self, window_ns: int, slices: int = 8):
        if window_ns <= 0 or slices <= 0:
            raise ValueError("window_ns and slices must be positive")
        self.window_ns = int(window_ns)
        self.slices = int(slices)
        self.slice_ns = max(1, self.window_ns // self.slices)
        self._ring: Dict[int, PercentileSketch] = {}
        #: lower bound on every live ring index — eviction advances this
        #: pointer instead of scanning the whole ring per record
        self._min_idx = -(1 << 62)
        #: lifetime sketch (never evicted) — the whole-run distribution
        self.lifetime = PercentileSketch()

    def _evict(self, now_ns: int) -> None:
        floor = now_ns // self.slice_ns - self.slices
        if floor < self._min_idx:
            return
        ring = self._ring
        if not ring:
            self._min_idx = floor + 1
            return
        if floor + 1 - self._min_idx > len(ring):
            # sparse jump (idle stream): filter live keys instead of
            # walking the gap index by index
            for idx in [i for i in ring if i <= floor]:
                del ring[idx]
        else:
            pop = ring.pop
            for idx in range(self._min_idx, floor + 1):
                pop(idx, None)
        self._min_idx = floor + 1

    def record(self, ts_ns: int, value: int) -> None:
        self._evict(ts_ns)
        idx = ts_ns // self.slice_ns
        sketch = self._ring.get(idx)
        if sketch is None:
            sketch = self._ring[idx] = PercentileSketch()
            if idx < self._min_idx:
                self._min_idx = idx
        sketch.record(value)
        self.lifetime.record(value)

    def window(self, now_ns: int) -> PercentileSketch:
        """The merged sketch of all live slices at *now_ns*."""
        self._evict(now_ns)
        return PercentileSketch.merged(
            self._ring[i] for i in sorted(self._ring))

    def quantile(self, q: float, now_ns: int) -> int:
        return self.window(now_ns).quantile(q)

    def merge(self, other: "WindowedSketch") -> "WindowedSketch":
        """Slice-wise merge (both windows must agree on geometry)."""
        if (other.window_ns, other.slices) != (self.window_ns,
                                               self.slices):
            raise ValueError("cannot merge windows of different geometry")
        for idx, sketch in other._ring.items():
            mine = self._ring.get(idx)
            if mine is None:
                mine = self._ring[idx] = PercentileSketch()
                if idx < self._min_idx:
                    self._min_idx = idx
            mine.merge(sketch)
        self.lifetime.merge(other.lifetime)
        return self


class WindowedCounter:
    """Sliding-window good/bad counts over simulated time.

    Backed by ring buckets of ``bucket_ns``; :meth:`totals` sums the
    buckets inside ``(now - window, now]``.  One counter serves every
    window length up to ``span_ns`` (the burn-rate evaluator reads two
    windows from the same counter).

    Bookkeeping is incremental: running (good, bad) sums over the live
    span make full-window queries O(1), eviction advances a minimum-index
    pointer instead of scanning every bucket, and sub-span windows sum a
    contiguous index range (``window / bucket_ns`` lookups) rather than
    iterating the whole ring.  The answers are bit-identical to the
    original full-scan implementation — a bucket ``[idx*B, (idx+1)*B)``
    overlaps ``(lo, now]`` exactly when ``lo//B <= idx <= now//B``.
    """

    __slots__ = ("span_ns", "bucket_ns", "_buckets", "_min_idx",
                 "_max_idx", "_good", "_bad")

    def __init__(self, span_ns: int, bucket_ns: int):
        if span_ns <= 0 or bucket_ns <= 0:
            raise ValueError("span_ns and bucket_ns must be positive")
        self.span_ns = int(span_ns)
        self.bucket_ns = int(bucket_ns)
        self._buckets: Dict[int, List[int]] = {}  # idx -> [good, bad]
        self._min_idx = -(1 << 62)
        self._max_idx = -(1 << 62)
        # running totals over the live (un-evicted) buckets
        self._good = 0
        self._bad = 0

    def _evict(self, now_ns: int) -> None:
        floor = (now_ns - self.span_ns) // self.bucket_ns
        if floor <= self._min_idx:
            return
        buckets = self._buckets
        if not buckets:
            self._min_idx = floor
            return
        if floor - self._min_idx > len(buckets):
            # sparse jump (idle stream): filter live keys instead of
            # walking the gap index by index
            for idx in [i for i in buckets if i < floor]:
                good, bad = buckets.pop(idx)
                self._good -= good
                self._bad -= bad
        else:
            pop = buckets.pop
            for idx in range(self._min_idx, floor):
                slot = pop(idx, None)
                if slot is not None:
                    self._good -= slot[0]
                    self._bad -= slot[1]
        self._min_idx = floor

    def record(self, ts_ns: int, good: bool) -> None:
        self._evict(ts_ns)
        idx = ts_ns // self.bucket_ns
        slot = self._buckets.get(idx)
        if slot is None:
            slot = self._buckets[idx] = [0, 0]
            if idx > self._max_idx:
                self._max_idx = idx
            if idx < self._min_idx:
                self._min_idx = idx
        if good:
            slot[0] += 1
            self._good += 1
        else:
            slot[1] += 1
            self._bad += 1

    def totals(self, window_ns: int, now_ns: int) -> Tuple[int, int]:
        """(good, bad) inside ``(now - window, now]``."""
        self._evict(now_ns)
        buckets = self._buckets
        if not buckets:
            return 0, 0
        lo = now_ns - min(int(window_ns), self.span_ns)
        bucket_ns = self.bucket_ns
        idx_min = lo // bucket_ns
        idx_max = now_ns // bucket_ns
        if idx_min <= self._min_idx and idx_max >= self._max_idx:
            return self._good, self._bad  # every live bucket qualifies
        lo_i = idx_min if idx_min > self._min_idx else self._min_idx
        hi_i = idx_max if idx_max < self._max_idx else self._max_idx
        good = bad = 0
        if hi_i - lo_i + 1 < len(buckets):
            get = buckets.get
            for idx in range(lo_i, hi_i + 1):
                slot = get(idx)
                if slot is not None:
                    good += slot[0]
                    bad += slot[1]
        else:
            for idx, (g, b) in buckets.items():
                if idx_min <= idx <= idx_max:
                    good += g
                    bad += b
        return good, bad


class ExemplarReservoir:
    """Worst-k / median-band / failure exemplar trace ids, windowed.

    The sliding window mirrors :class:`WindowedSketch`'s ring-slice
    geometry; each live slice retains

    * the ``k`` **worst** latencies seen in the slice (with their trace
      ids and completion timestamps),
    * one **median-band** sample — the completion whose latency landed
      closest to the running lifetime p50, within ``band`` of it (the
      healthy baseline a triage diff compares the tail against), and
    * the last ``k`` **failed** invocations' trace ids.

    :meth:`record` / :meth:`note_failure` return the trace ids that were
    *newly retained* so the caller can pin them on the telemetry hub
    (:meth:`~repro.obs.Telemetry.pin_trace`) before their spans arrive.
    Retention is a pure function of the observation stream — same seed,
    same exemplars.
    """

    __slots__ = ("window_ns", "slice_ns", "slices", "k", "band",
                 "_ring", "_min_idx", "_p50", "_since_refresh")

    #: Refresh the cached lifetime-p50 hint every N observations (a
    #: sketch quantile walk per observation would dominate hot paths).
    P50_REFRESH_EVERY = 16

    def __init__(self, window_ns: int, slices: int = 8, k: int = 3,
                 band: float = 0.25):
        if window_ns <= 0 or slices <= 0 or k <= 0:
            raise ValueError("window_ns, slices and k must be positive")
        self.window_ns = int(window_ns)
        self.slices = int(slices)
        self.slice_ns = max(1, self.window_ns // self.slices)
        self.k = int(k)
        self.band = float(band)
        # idx -> {"worst": [(latency, ts, trace_id) desc],
        #         "median": (dist, ts, trace_id, latency) | None,
        #         "failed": [(ts, trace_id)]}
        self._ring: Dict[int, Dict[str, Any]] = {}
        self._min_idx = -(1 << 62)
        self._p50 = 0
        self._since_refresh = 0

    def _evict(self, now_ns: int) -> None:
        floor = now_ns // self.slice_ns - self.slices
        if floor < self._min_idx:
            return
        ring = self._ring
        for idx in [i for i in ring if i <= floor]:
            del ring[idx]
        self._min_idx = floor + 1

    def _slice(self, ts_ns: int) -> Dict[str, Any]:
        self._evict(ts_ns)
        idx = ts_ns // self.slice_ns
        slot = self._ring.get(idx)
        if slot is None:
            slot = self._ring[idx] = {"worst": [], "median": None,
                                      "failed": []}
            if idx < self._min_idx:
                self._min_idx = idx
        return slot

    def record(self, ts_ns: int, latency_ns: int, trace_id: str,
               lifetime: PercentileSketch) -> List[str]:
        """Offer one completion; returns trace ids newly retained."""
        if self._since_refresh == 0 and lifetime.count:
            self._p50 = lifetime.quantile(0.5)
        self._since_refresh = (self._since_refresh + 1) \
            % self.P50_REFRESH_EVERY
        slot = self._slice(ts_ns)
        pinned: List[str] = []
        worst = slot["worst"]
        if len(worst) < self.k or latency_ns > worst[-1][0]:
            worst.append((latency_ns, ts_ns, trace_id))
            worst.sort(key=lambda e: (-e[0], e[1], e[2]))
            del worst[self.k:]
            if any(e[2] == trace_id for e in worst):
                pinned.append(trace_id)
        p50 = self._p50
        if p50 > 0 and abs(latency_ns - p50) <= self.band * p50:
            dist = abs(latency_ns - p50)
            median = slot["median"]
            if median is None or dist < median[0]:
                slot["median"] = (dist, ts_ns, trace_id, latency_ns)
                pinned.append(trace_id)
        return pinned

    def note_failure(self, ts_ns: int, trace_id: str) -> List[str]:
        """Offer one failed invocation; returns newly retained ids."""
        slot = self._slice(ts_ns)
        failed = slot["failed"]
        failed.append((ts_ns, trace_id))
        if len(failed) > self.k:
            del failed[0]
        return [trace_id]

    # -- read-back -----------------------------------------------------------

    def worst(self, now_ns: int) -> List[Dict[str, Any]]:
        """The k worst live-window exemplars, slowest first."""
        self._evict(now_ns)
        merged = [e for idx in sorted(self._ring)
                  for e in self._ring[idx]["worst"]]
        merged.sort(key=lambda e: (-e[0], e[1], e[2]))
        return [{"trace_id": tid, "latency_ns": lat, "ts_ns": ts}
                for lat, ts, tid in merged[:self.k]]

    def median(self, now_ns: int) -> Optional[Dict[str, Any]]:
        """The live-window sample closest to the running p50."""
        self._evict(now_ns)
        best = None
        for idx in sorted(self._ring):
            cand = self._ring[idx]["median"]
            if cand is not None and (best is None or cand[0] < best[0]):
                best = cand
        if best is None:
            return None
        dist, ts, tid, lat = best
        return {"trace_id": tid, "latency_ns": lat, "ts_ns": ts}

    def failed(self, now_ns: int) -> List[Dict[str, Any]]:
        """The most recent failed-invocation exemplars, newest first."""
        self._evict(now_ns)
        merged = [e for idx in sorted(self._ring)
                  for e in self._ring[idx]["failed"]]
        merged.sort(key=lambda e: (-e[0], e[1]))
        return [{"trace_id": tid, "ts_ns": ts}
                for ts, tid in merged[:self.k]]

    def snapshot(self, now_ns: int) -> Dict[str, Any]:
        return {"worst": self.worst(now_ns),
                "median": self.median(now_ns),
                "failed": self.failed(now_ns)}


class Alert:
    """One burn-rate alert instance: an SLO breached for one fleet key."""

    __slots__ = ("slo", "key", "fired_ns", "cleared_ns",
                 "burn_long", "burn_short")

    def __init__(self, slo: SLO, key: FleetKey, fired_ns: int,
                 burn_long: float, burn_short: float):
        self.slo = slo
        self.key = key
        self.fired_ns = fired_ns
        self.cleared_ns: Optional[int] = None
        self.burn_long = burn_long
        self.burn_short = burn_short

    @property
    def active(self) -> bool:
        return self.cleared_ns is None

    def to_dict(self) -> Dict[str, Any]:
        tenant, workflow, transport = self.key
        return {"slo": self.slo.name, "tenant": tenant,
                "workflow": workflow, "transport": transport,
                "fired_ns": self.fired_ns, "cleared_ns": self.cleared_ns,
                "burn_long": round(self.burn_long, 6),
                "burn_short": round(self.burn_short, 6)}


class _SloState:
    """Per-(key, slo) burn-rate evaluation state."""

    __slots__ = ("counter", "alert")

    def __init__(self, slo: SLO):
        # one counter serves both windows; bucket at 1/8 short window so
        # the short burn rate has usable resolution
        self.counter = WindowedCounter(
            span_ns=slo.long_window_ns,
            bucket_ns=max(1, slo.short_window_ns // 8))
        self.alert: Optional[Alert] = None


#: Layer under which the monitor files its own metrics and alert events.
MONITOR_LAYER = "obs.monitor"


class FleetMonitor:
    """Streaming SLO monitor over a :class:`Telemetry` hub.

    Attach with :meth:`attach` (or construct and pass to
    ``repro.api.run(monitor=...)`` / ``run_chaos_workflow(monitor=...)``)
    and the monitor consumes the coordinator's ``invocation.done`` /
    ``invocation.failed`` / ``invocation.rejected`` events as they are
    recorded, maintaining:

    * a :class:`WindowedSketch` of end-to-end latency per
      ``(tenant, workflow, transport)``;
    * request / error rates over the same sliding window;
    * burn-rate alert state per (key, SLO), with transitions appended to
      :attr:`alerts` and mirrored onto the hub as
      ``obs.monitor`` ``alert.fired`` / ``alert.cleared`` events.
    """

    def __init__(self, slos: Optional[Iterable[SLO]] = None,
                 window_ns: Optional[int] = None, slices: int = 8,
                 exemplars: bool = True, exemplar_k: int = 3):
        self.slos: List[SLO] = list(DEFAULT_SLOS if slos is None
                                    else slos)
        # default series window: the longest SLO window (so the series
        # and the alerts describe the same horizon)
        self.window_ns = int(window_ns) if window_ns is not None else max(
            [s.long_window_ns for s in self.slos] or [1_000_000_000])
        self.slices = slices
        self.exemplars_enabled = bool(exemplars)
        self.exemplar_k = int(exemplar_k)
        self.latency: Dict[FleetKey, WindowedSketch] = {}
        self.requests: Dict[FleetKey, WindowedCounter] = {}
        #: per-key exemplar reservoirs (worst-k / median-band / failed)
        self.exemplars: Dict[FleetKey, ExemplarReservoir] = {}
        #: lifetime admission rejections per key (also counted as *bad*
        #: in the windowed series, so availability folds them in)
        self.rejected_counts: Dict[FleetKey, int] = {}
        self.alerts: List[Alert] = []
        self.observed = 0
        #: simulated timestamp of the latest observation — the natural
        #: "now" for end-of-run snapshots/renders
        self.last_ts = 0
        self._slo_state: Dict[Tuple[FleetKey, str], _SloState] = {}
        #: per-key [(slo, state), ...] — resolved once per fleet key so
        #: the per-event hot path skips the tuple-keyed dict lookups
        self._key_states: Dict[FleetKey, List[Tuple[SLO, _SloState]]] = {}
        self._hub: Optional[Telemetry] = None

    # -- hub wiring ----------------------------------------------------------

    def attach(self, hub: Telemetry) -> "FleetMonitor":
        self._hub = hub
        hub.add_listener(self._on_event)
        return self

    def detach(self) -> None:
        if self._hub is not None:
            self._hub.remove_listener(self._on_event)
            self._hub = None

    def _on_event(self, event: Dict[str, Any]) -> None:
        if event["layer"] != "platform" \
                or event["name"] not in ("invocation.done",
                                         "invocation.failed",
                                         "invocation.rejected"):
            return
        attrs = event["attributes"]
        key = (attrs.get("tenant", "default"),
               attrs.get("workflow", "?"),
               attrs.get("transport", "?"))
        self.observe(event["ts"], key,
                     latency_ns=attrs.get("latency_ns"),
                     ok=event["name"] == "invocation.done",
                     rejected=event["name"] == "invocation.rejected",
                     trace_id=attrs.get("trace_id"))

    # -- ingestion -----------------------------------------------------------

    def observe(self, ts_ns: int, key: FleetKey,
                latency_ns: Optional[int], ok: bool,
                rejected: bool = False,
                trace_id: Optional[str] = None) -> None:
        """Feed one finished (or admission-rejected) invocation.

        Rejections count as *bad* in every window and SLO — a refused
        request burns availability budget exactly like a failed one — but
        are tallied separately so snapshots can tell refusals from
        failures.

        When *trace_id* is supplied and exemplars are enabled, the
        invocation is offered to the key's :class:`ExemplarReservoir`;
        newly retained trace ids are pinned on the hub
        (:meth:`Telemetry.pin_trace`) so their spans survive storage
        sampling.  Because events dispatch listeners synchronously, an
        emitter that fires its completion event *before* recording the
        invocation's spans gets full span trees for every exemplar.
        """
        self.observed += 1
        if rejected:
            self.rejected_counts[key] = \
                self.rejected_counts.get(key, 0) + 1
        if ts_ns > self.last_ts:
            self.last_ts = ts_ns
        sketch = self.latency.get(key)
        if sketch is None:
            sketch = self.latency[key] = WindowedSketch(
                self.window_ns, self.slices)
        counter = self.requests.get(key)
        if counter is None:
            counter = self.requests[key] = WindowedCounter(
                self.window_ns, max(1, self.window_ns // (8 * self.slices)))
        counter.record(ts_ns, ok)
        if ok and latency_ns is not None:
            sketch.record(ts_ns, int(latency_ns))
        if self.exemplars_enabled and trace_id is not None:
            reservoir = self.exemplars.get(key)
            if reservoir is None:
                reservoir = self.exemplars[key] = ExemplarReservoir(
                    self.window_ns, self.slices, k=self.exemplar_k)
            if ok and latency_ns is not None:
                retained = reservoir.record(ts_ns, int(latency_ns),
                                            trace_id, sketch.lifetime)
            elif not rejected:
                retained = reservoir.note_failure(ts_ns, trace_id)
            else:
                retained = ()
            if retained and self._hub is not None:
                for tid in retained:
                    self._hub.pin_trace(tid)
        states = self._key_states.get(key)
        if states is None:
            states = self._key_states[key] = [
                (slo, self._slo_state.setdefault((key, slo.name),
                                                 _SloState(slo)))
                for slo in self.slos]
        for slo, state in states:
            self._evaluate(slo, state, key, ts_ns, latency_ns, ok)

    # -- burn-rate evaluation ------------------------------------------------

    def _evaluate(self, slo: SLO, state: _SloState, key: FleetKey,
                  ts_ns: int, latency_ns: Optional[int],
                  ok: bool) -> None:
        state.counter.record(ts_ns, slo.is_good(latency_ns, ok))
        burn_long = self._burn(state, slo, slo.long_window_ns, ts_ns)
        burn_short = self._burn(state, slo, slo.short_window_ns, ts_ns)
        firing = state.alert is not None and state.alert.active
        if not firing and burn_long >= slo.burn_rate_threshold \
                and burn_short >= slo.burn_rate_threshold:
            alert = Alert(slo, key, ts_ns, burn_long, burn_short)
            state.alert = alert
            self.alerts.append(alert)
            self._emit(key, "alert.fired", alert)
        elif firing and burn_short < slo.burn_rate_threshold:
            state.alert.cleared_ns = ts_ns
            self._emit(key, "alert.cleared", state.alert)

    @staticmethod
    def _burn(state: _SloState, slo: SLO, window_ns: int,
              now_ns: int) -> float:
        good, bad = state.counter.totals(window_ns, now_ns)
        total = good + bad
        if total == 0:
            return 0.0
        return (bad / total) / slo.error_budget

    def _emit(self, key: FleetKey, name: str, alert: Alert) -> None:
        if self._hub is None:
            return
        tenant, workflow, transport = key
        self._hub.count("cluster", MONITOR_LAYER, f"{name}.count")
        self._hub.event("cluster", MONITOR_LAYER, name,
                        slo=alert.slo.name, tenant=tenant,
                        workflow=workflow, transport=transport,
                        burn_long=round(alert.burn_long, 6),
                        burn_short=round(alert.burn_short, 6))

    # -- read-back -----------------------------------------------------------

    def keys(self) -> List[FleetKey]:
        return sorted(self.latency)

    def active_alerts(self) -> List[Alert]:
        return [a for a in self.alerts if a.active]

    def exemplars_for(self, key: FleetKey,
                      now_ns: Optional[int] = None
                      ) -> Optional[Dict[str, Any]]:
        """Live-window exemplars for *key* (worst / median / failed), or
        ``None`` when exemplars are disabled or the key is unseen."""
        reservoir = self.exemplars.get(key)
        if reservoir is None:
            return None
        return reservoir.snapshot(self.last_ts if now_ns is None
                                  else now_ns)

    def quantile(self, key: FleetKey, q: float, now_ns: int) -> int:
        sketch = self.latency.get(key)
        return sketch.quantile(q, now_ns) if sketch is not None else 0

    def rate_per_s(self, key: FleetKey, now_ns: int) -> float:
        """Completed+failed invocations per simulated second, windowed."""
        counter = self.requests.get(key)
        if counter is None:
            return 0.0
        good, bad = counter.totals(self.window_ns, now_ns)
        return (good + bad) * 1e9 / self.window_ns

    def availability(self, key: FleetKey, now_ns: int) -> float:
        counter = self.requests.get(key)
        if counter is None:
            return 1.0
        good, bad = counter.totals(self.window_ns, now_ns)
        return good / (good + bad) if good + bad else 1.0

    def snapshot(self, now_ns: Optional[int] = None) -> Dict[str, Any]:
        """A JSON-ready view of every fleet series and the alert log
        (at *now_ns*, default: the latest observation)."""
        now_ns = self.last_ts if now_ns is None else now_ns
        series = []
        for key in self.keys():
            tenant, workflow, transport = key
            window = self.latency[key].window(now_ns)
            good, bad = self.requests[key].totals(self.window_ns, now_ns)
            series.append({
                "tenant": tenant, "workflow": workflow,
                "transport": transport,
                "window_ns": self.window_ns,
                "requests": good + bad, "failures": bad,
                "rejections": self.rejected_counts.get(key, 0),
                "availability": round(self.availability(key, now_ns), 6),
                "rate_per_s": round(self.rate_per_s(key, now_ns), 6),
                "latency": window.to_dict(),
                "latency_lifetime": self.latency[key].lifetime.to_dict(),
            })
        return {
            "observed": self.observed,
            "slos": [s.to_dict() for s in self.slos],
            "series": series,
            "alerts": [a.to_dict() for a in self.alerts],
        }

    def render(self, now_ns: Optional[int] = None) -> str:
        """The monitor state as ranked text tables."""
        from repro.analysis.report import Table

        now_ns = self.last_ts if now_ns is None else now_ns
        lines = []
        table = Table(
            f"Fleet monitor @ {now_ns / 1e6:.3f} ms simulated "
            f"({self.observed} invocations observed)",
            ["tenant", "workflow", "transport", "req", "avail",
             "p50_ms", "p99_ms"])
        for key in self.keys():
            tenant, workflow, transport = key
            good, bad = self.requests[key].totals(self.window_ns, now_ns)
            table.add_row(
                tenant, workflow, transport, good + bad,
                f"{100 * self.availability(key, now_ns):.2f}%",
                f"{self.quantile(key, 0.5, now_ns) / 1e6:.3f}",
                f"{self.quantile(key, 0.99, now_ns) / 1e6:.3f}")
        lines.append(table.render())
        if self.alerts:
            alert_table = Table("SLO alerts", ["slo", "key", "fired_ns",
                                               "cleared_ns"])
            for alert in self.alerts:
                alert_table.add_row(
                    alert.slo.name, "/".join(alert.key), alert.fired_ns,
                    alert.cleared_ns if alert.cleared_ns is not None
                    else "ACTIVE")
            lines.append(alert_table.render())
        else:
            lines.append("no SLO alerts fired")
        return "\n".join(lines)
