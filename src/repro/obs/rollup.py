"""Fold Ledger category totals onto the hub via ``STAGE_CATEGORIES``.

This is the same category→stage mapping that Fig 11's
:class:`~repro.transfer.base.StageMeter` uses; the rollup only *reads*
ledgers and invocation records, so T/N/R semantics are untouched — the hub
just gains ``transfer`` layer counters mirroring the per-figure rollups
every experiment used to hand-roll.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.telemetry import Telemetry
    from repro.sim.ledger import Ledger

#: Layer under which ledger rollups are filed.
TRANSFER_LAYER = "transfer"


def rollup_ledger(hub: "Telemetry", ledger: "Ledger",
                  machine: str = "cluster",
                  layer: str = TRANSFER_LAYER) -> None:
    """Fold one ledger's lifetime category totals into hub counters.

    Emits both the raw ``category.<cat>.ns`` counters and the Fig 11
    ``stage.<transform|network|reconstruct|access>.ns`` rollup.
    """
    from repro.transfer.base import STAGE_CATEGORIES  # lazy: avoid cycle

    for cat, ns in ledger.items():
        stage = STAGE_CATEGORIES.get(cat, "network")
        hub.count(machine, layer, f"category.{cat}.ns", ns)
        hub.count(machine, layer, f"stage.{stage}.ns", ns)


def rollup_record(hub: "Telemetry", record,
                  machine: str = "cluster",
                  layer: str = TRANSFER_LAYER) -> None:
    """Fold one :class:`InvocationRecord`'s stage totals into hub counters.

    Uses the record's own :meth:`stage_totals` — the exact numbers the
    figures report — so hub totals and figure totals can never diverge.
    """
    for stage, ns in record.stage_totals().items():
        hub.count(machine, layer, f"stage.{stage}.ns", ns)
    hub.count(machine, layer, "invocation.latency.ns", record.latency_ns)
    hub.count(machine, layer, "invocation.compute.ns", record.compute_ns)
    hub.count(machine, layer, "invocation.platform.ns",
              record.platform_ns)
