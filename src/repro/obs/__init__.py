"""repro.obs — cross-layer telemetry behind one hub.

Counters, gauges, log-binned histograms, structured events and spans from
every layer of the simulated stack (engine, memory, RDMA/RPC, kernel,
platform, chaos), keyed by ``(machine, layer, name)``, at zero simulated
cost.  Exporters serialize a hub to JSON, CSV, or Chrome trace-event
format (loadable in Perfetto), merging spans from the existing
:class:`~repro.analysis.tracing.Tracer`.  On top of the hub sit the
fleet monitor (:mod:`repro.obs.monitor` — windowed percentile sketches,
per-tenant series, SLO burn-rate alerting in simulated time) and the
run differ (:mod:`repro.obs.diff` — ranked root-cause reports between
two runs or bench snapshots).

Quick use::

    from repro import obs

    with obs.capture() as hub:
        result = repro.api.run("wordcount", "rmmap", seed=1)
    obs.write_chrome_trace(hub, "trace.json")

See ``docs/observability.md`` for the metric naming scheme.
"""

from repro.obs.telemetry import (Histogram, MetricKey, Telemetry,
                                 WALL_PREFIX, capture, current, install,
                                 uninstall)
from repro.obs.export import (to_chrome_trace, to_chrome_trace_json,
                              to_csv, to_json, to_prom_text,
                              write_chrome_trace, write_csv, write_json,
                              write_prom)
from repro.obs.lineage import (LINEAGE_SCHEMA, LineageTracker,
                               current_lineage)
from repro.obs.profile import (PathSegment, SpanNode, attribute,
                               build_span_tree, critical_path,
                               critical_path_report, folded_stacks,
                               parse_folded, render_report,
                               sampling_diagnostic, trace_ids)
from repro.obs.rollup import (TRANSFER_LAYER, rollup_ledger,
                              rollup_record)
from repro.obs.monitor import (Alert, ExemplarReservoir, FleetMonitor,
                               MONITOR_LAYER, PercentileSketch,
                               SKETCH_RELATIVE_ERROR, WindowedCounter,
                               WindowedSketch)
from repro.obs.slo import DEFAULT_SLOS, SLO
from repro.obs.diff import (diff_snapshot_paths, diff_snapshots,
                            diff_traces, render_diff)
from repro.obs.timeline import Timeline, TimelineRecorder
from repro.obs.triage import (AlertContext, DEFAULT_SATURATION_SPECS,
                              SaturationSpec, render_triage,
                              triage_alert, triage_report)

__all__ = [
    "Histogram",
    "MetricKey",
    "Telemetry",
    "WALL_PREFIX",
    "capture",
    "current",
    "install",
    "uninstall",
    "to_chrome_trace",
    "to_chrome_trace_json",
    "to_csv",
    "to_json",
    "to_prom_text",
    "write_chrome_trace",
    "write_csv",
    "write_json",
    "write_prom",
    "LINEAGE_SCHEMA",
    "LineageTracker",
    "current_lineage",
    "TRANSFER_LAYER",
    "rollup_ledger",
    "rollup_record",
    "PathSegment",
    "SpanNode",
    "attribute",
    "build_span_tree",
    "critical_path",
    "critical_path_report",
    "folded_stacks",
    "parse_folded",
    "render_report",
    "sampling_diagnostic",
    "trace_ids",
    "Alert",
    "ExemplarReservoir",
    "FleetMonitor",
    "MONITOR_LAYER",
    "PercentileSketch",
    "SKETCH_RELATIVE_ERROR",
    "WindowedCounter",
    "WindowedSketch",
    "DEFAULT_SLOS",
    "SLO",
    "diff_snapshot_paths",
    "diff_snapshots",
    "diff_traces",
    "render_diff",
    "Timeline",
    "TimelineRecorder",
    "AlertContext",
    "DEFAULT_SATURATION_SPECS",
    "SaturationSpec",
    "render_triage",
    "triage_alert",
    "triage_report",
]
