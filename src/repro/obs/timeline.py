"""Bounded resource-saturation timelines over simulated time.

A :class:`Timeline` is a downsampling time series for one metric: values
land in fixed-width simulated-time buckets holding ``[min, max, sum,
count, last]`` aggregates, and when the bucket count exceeds the cap the
series *coalesces* — adjacent buckets merge pairwise and the bucket
width doubles.  Coalescing depends only on the recorded ``(ts, value)``
stream, never on wall time, so the same seeded run always produces the
same timeline, byte for byte.

A :class:`TimelineRecorder` holds one timeline per ``(machine, layer,
name)`` metric key.  The telemetry hub feeds it from every counter and
gauge update when timelines are enabled
(:meth:`repro.obs.Telemetry.enable_timelines`); the auto-triage engine
(:mod:`repro.obs.triage`) then asks *which resource series crossed its
saturation threshold inside an alert window* — the question the hub's
final-value gauges cannot answer.

Like every ``repro.obs`` surface this is a pure observer: recording
never touches a ledger, the event queue, or the clock.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: (machine, layer, name) — mirrors :data:`repro.obs.telemetry.MetricKey`
#: without importing it (this module must stay import-cycle free).
SeriesKey = Tuple[str, str, str]

#: Bucket aggregate layout: [min, max, sum, count, last, last_ts].
_MIN, _MAX, _SUM, _COUNT, _LAST, _LAST_TS = range(6)


class Timeline:
    """One metric's bounded, coalescing simulated-time series.

    ``bucket_ns`` starts at the configured resolution and doubles every
    time the live bucket count would exceed ``max_buckets`` — long runs
    keep a complete (coarser) history instead of a truncated one.
    """

    __slots__ = ("bucket_ns", "max_buckets", "_buckets", "count",
                 "peak", "low", "first_ts", "last_ts", "last")

    def __init__(self, bucket_ns: int = 1_000_000,
                 max_buckets: int = 256):
        if bucket_ns <= 0 or max_buckets < 2:
            raise ValueError("bucket_ns must be positive and "
                             "max_buckets >= 2")
        self.bucket_ns = int(bucket_ns)
        self.max_buckets = int(max_buckets)
        self._buckets: Dict[int, List[int]] = {}
        self.count = 0
        #: lifetime extrema and the most recent sample
        self.peak: Optional[int] = None
        self.low: Optional[int] = None
        self.first_ts: Optional[int] = None
        self.last_ts: Optional[int] = None
        self.last: Optional[int] = None

    def record(self, ts_ns: int, value: int) -> None:
        ts_ns = int(ts_ns)
        value = int(value)
        self.count += 1
        if self.peak is None or value > self.peak:
            self.peak = value
        if self.low is None or value < self.low:
            self.low = value
        if self.first_ts is None:
            self.first_ts = ts_ns
        self.last_ts = ts_ns
        self.last = value
        idx = ts_ns // self.bucket_ns
        slot = self._buckets.get(idx)
        if slot is None:
            if len(self._buckets) >= self.max_buckets:
                self._coalesce()
                idx = ts_ns // self.bucket_ns
                slot = self._buckets.get(idx)
        if slot is None:
            self._buckets[idx] = [value, value, value, 1, value, ts_ns]
            return
        if value < slot[_MIN]:
            slot[_MIN] = value
        if value > slot[_MAX]:
            slot[_MAX] = value
        slot[_SUM] += value
        slot[_COUNT] += 1
        if ts_ns >= slot[_LAST_TS]:
            slot[_LAST] = value
            slot[_LAST_TS] = ts_ns

    def _coalesce(self) -> None:
        """Merge buckets pairwise and double the bucket width."""
        merged: Dict[int, List[int]] = {}
        for idx, slot in self._buckets.items():
            j = idx // 2
            have = merged.get(j)
            if have is None:
                merged[j] = list(slot)
                continue
            if slot[_MIN] < have[_MIN]:
                have[_MIN] = slot[_MIN]
            if slot[_MAX] > have[_MAX]:
                have[_MAX] = slot[_MAX]
            have[_SUM] += slot[_SUM]
            have[_COUNT] += slot[_COUNT]
            if slot[_LAST_TS] > have[_LAST_TS]:
                have[_LAST] = slot[_LAST]
                have[_LAST_TS] = slot[_LAST_TS]
        self._buckets = merged
        self.bucket_ns *= 2

    # -- queries -------------------------------------------------------------

    def _overlapping(self, t0_ns: int, t1_ns: int) -> List[int]:
        """Sorted indices of buckets overlapping ``[t0, t1]``."""
        b = self.bucket_ns
        return sorted(idx for idx in self._buckets
                      if idx * b <= t1_ns and (idx + 1) * b > t0_ns)

    def stats_between(self, t0_ns: int,
                      t1_ns: int) -> Optional[Dict[str, int]]:
        """Aggregate stats over buckets overlapping ``[t0, t1]``, or
        ``None`` when the window holds no samples.  Bucket-granular: a
        bucket straddling the window edge counts whole."""
        idxs = self._overlapping(t0_ns, t1_ns)
        if not idxs:
            return None
        mn = mx = None
        sm = cnt = 0
        last = last_ts = None
        for idx in idxs:
            slot = self._buckets[idx]
            if mn is None or slot[_MIN] < mn:
                mn = slot[_MIN]
            if mx is None or slot[_MAX] > mx:
                mx = slot[_MAX]
            sm += slot[_SUM]
            cnt += slot[_COUNT]
            if last_ts is None or slot[_LAST_TS] >= last_ts:
                last = slot[_LAST]
                last_ts = slot[_LAST_TS]
        return {"min": mn, "max": mx, "sum": sm, "count": cnt,
                "last": last}

    def value_at(self, ts_ns: int) -> Optional[int]:
        """The last recorded value in any bucket starting at or before
        *ts_ns* (bucket-granular, like everything downsampled)."""
        best = None
        b = self.bucket_ns
        for idx in sorted(self._buckets):
            if idx * b > ts_ns:
                break
            best = self._buckets[idx]
        return best[_LAST] if best is not None else None

    def delta_between(self, t0_ns: int, t1_ns: int) -> int:
        """Increase of a monotone series across ``[t0, t1]`` (>= 0).

        The baseline is the last value at or before *t0*; a series born
        inside the window baselines at zero."""
        after = self.value_at(t1_ns)
        if after is None:
            return 0
        before = self.value_at(t0_ns)
        if before is None:
            before = 0
        return max(0, after - before)

    def points(self, t0_ns: Optional[int] = None,
               t1_ns: Optional[int] = None) -> List[Dict[str, Any]]:
        """JSON-ready bucket aggregates in time order (optionally
        restricted to buckets overlapping ``[t0, t1]``)."""
        if t0_ns is None and t1_ns is None:
            idxs = sorted(self._buckets)
        else:
            lo = 0 if t0_ns is None else t0_ns
            hi = (1 << 62) if t1_ns is None else t1_ns
            idxs = self._overlapping(lo, hi)
        out = []
        for idx in idxs:
            slot = self._buckets[idx]
            out.append({
                "start_ns": idx * self.bucket_ns,
                "end_ns": (idx + 1) * self.bucket_ns,
                "min": slot[_MIN], "max": slot[_MAX],
                "mean": round(slot[_SUM] / slot[_COUNT], 6),
                "count": slot[_COUNT], "last": slot[_LAST],
            })
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {"bucket_ns": self.bucket_ns, "count": self.count,
                "peak": self.peak, "low": self.low,
                "first_ts": self.first_ts, "last_ts": self.last_ts,
                "last": self.last, "points": self.points()}


class TimelineRecorder:
    """One :class:`Timeline` per metric key, with a series-count bound.

    Attached to a :class:`~repro.obs.Telemetry` hub via
    ``enable_timelines()``; the hub then routes every counter/gauge
    update here (``wall.``-prefixed metrics excluded — they are host
    measurements, not simulated state).
    """

    __slots__ = ("bucket_ns", "max_buckets", "max_series", "series",
                 "dropped_series")

    def __init__(self, bucket_ns: int = 1_000_000,
                 max_buckets: int = 256, max_series: int = 1024):
        self.bucket_ns = int(bucket_ns)
        self.max_buckets = int(max_buckets)
        self.max_series = int(max_series)
        self.series: Dict[SeriesKey, Timeline] = {}
        self.dropped_series = 0

    def record(self, key: SeriesKey, ts_ns: int, value: int) -> None:
        timeline = self.series.get(key)
        if timeline is None:
            if key[2].startswith("wall."):
                return
            if len(self.series) >= self.max_series:
                self.dropped_series += 1
                return
            timeline = self.series[key] = Timeline(
                bucket_ns=self.bucket_ns, max_buckets=self.max_buckets)
        timeline.record(ts_ns, value)

    def get(self, machine: str, layer: str,
            name: str) -> Optional[Timeline]:
        return self.series.get((machine, layer, name))

    def keys(self) -> List[SeriesKey]:
        return sorted(self.series)

    def clear(self) -> None:
        self.series.clear()
        self.dropped_series = 0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dump of every timeline, sorted by key."""
        return {
            "dropped_series": self.dropped_series,
            "series": [
                {"machine": m, "layer": lyr, "name": n,
                 **self.series[(m, lyr, n)].to_dict()}
                for (m, lyr, n) in self.keys()],
        }
