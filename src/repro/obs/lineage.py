"""Page-provenance lineage: byte-level observability for state transfer.

The rest of :mod:`repro.obs` sees *time* — spans, latencies, SLO burn.
This module sees *bytes*: a :class:`LineageTracker` follows every page of
transferred state through its lifecycle

    producer heap write -> kernel ``register_mem`` -> remote ``rmap``
    -> one-sided pull / prefetch / CoW divergence -> consumer access

and attributes the physical bytes moved back to Python objects (via the
managed heap's object graph) and to workflow DAG edges (via the
coordinator's ambient edge context).  From the collected graph it derives
the metrics nothing else in the stack can compute:

* **transfer amplification** — bytes moved over the fabric divided by the
  bytes the consumer actually touched;
* **prefetch waste** — pages pulled ahead of demand that were never
  accessed, plus PTE-metadata regions the coalescing on-demand page-table
  fetch speculatively pulled for nothing;
* **duplicate pulls** — the same ``(fid, page)`` fetched more than once
  (chaos retries, re-execution);
* **per-object / per-edge byte attribution** across all registered
  transports.  Serializing transports (messaging, storage, naos) report
  *logical* bytes at their charge sites, so amplification is comparable
  across the whole Fig 14 matrix: for them "touched" is the payload the
  consumer materializes, and "moved" is what actually crossed the wire
  (inflation, put+get double movement, compression).

Like every other :mod:`repro.obs` facility the tracker is a **pure
observer**: it is reached through the hub (``hub.enable_lineage()``), it
only mutates its own dictionaries, and no instrumentation site charges a
ledger or touches the event queue — a run with lineage enabled is
bit-identical to one without.  Instrumentation follows the hub pattern::

    lin = current_lineage()
    if lin is not None:
        lin.page_pulled(vma_name, space_name, vpn, "demand", PAGE_SIZE)

Byte conservation: the physical bytes the tracker records mirror the
substrate's own accounting exactly — one ``PAGE_SIZE`` per RDMA page
READ, the inflated wire bytes messaging charges for, one put plus one
get for storage — so ``tests/property/test_byte_conservation.py`` can
assert lineage totals equal the independently recorded transport byte
counters for every transport.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.telemetry import current as _telemetry
from repro.units import PAGE_SIZE

#: Version stamp of :meth:`LineageTracker.report`.
LINEAGE_SCHEMA = "lineage/v1"

_PAGE_SHIFT = PAGE_SIZE.bit_length() - 1

#: PTE metadata region granularity; mirrors
#: :data:`repro.kernel.remote_pager.REGION_PAGES` (not imported to keep
#: the observer layer free of kernel imports).
_REGION_PAGES = 512


def current_lineage() -> Optional["LineageTracker"]:
    """The installed hub's lineage tracker, or ``None`` (the fast path)."""
    hub = _telemetry()
    return hub.lineage if hub is not None else None


def _fid_of(vma_name: str) -> str:
    """Registration fid from a remote VMA name (``"rmap:<fid>"``)."""
    if vma_name.startswith("rmap:"):
        return vma_name[5:]
    return vma_name


class _Binding:
    """One consumer-side mapping of a registered fid (one rmap'd VMA)."""

    __slots__ = ("fid", "space", "edge", "transport", "vm_start", "vm_end",
                 "pulls", "prefetched", "touched", "kinds", "bytes_moved",
                 "bytes_moved_rpc", "duplicate_pulls", "cow_breaks",
                 "pte_fetches", "pte_regions", "attempts", "first_ns",
                 "last_ns")

    def __init__(self, fid: str, space: str, vm_start: int, vm_end: int):
        self.fid = fid
        self.space = space
        self.edge: Optional[str] = None
        self.transport: Optional[str] = None
        self.vm_start = vm_start
        self.vm_end = vm_end
        #: vpn -> data-moving pull count (demand/prefetch/rpc)
        self.pulls: Dict[int, int] = {}
        #: vpns installed ahead of demand (prefetch-waste candidates)
        self.prefetched: set = set()
        #: vpn -> consumer-accessed bytes, capped at PAGE_SIZE
        self.touched: Dict[int, int] = {}
        self.kinds: Dict[str, int] = {}
        self.bytes_moved = 0
        self.bytes_moved_rpc = 0
        self.duplicate_pulls = 0
        self.cow_breaks = 0
        self.pte_fetches = 0
        self.pte_regions = 0
        self.attempts = 1
        self.first_ns: Optional[int] = None
        self.last_ns: Optional[int] = None

    def stamp(self, ts: int) -> None:
        if self.first_ns is None:
            self.first_ns = ts
        self.last_ns = ts


class _FidState:
    """Producer-side provenance of one ``register_mem`` registration."""

    __slots__ = ("fid", "owner", "registered_pages", "vm_start", "vm_end",
                 "registered_at", "metadata_bytes", "transport", "objects",
                 "bindings")

    def __init__(self, fid: str, owner: str = "?", registered_pages: int = 0,
                 vm_start: int = 0, vm_end: int = 0,
                 registered_at: Optional[int] = None):
        self.fid = fid
        self.owner = owner
        self.registered_pages = registered_pages
        self.vm_start = vm_start
        self.vm_end = vm_end
        self.registered_at = registered_at
        self.metadata_bytes = 0
        self.transport: Optional[str] = None
        #: TypeTag name -> [object count, object-span bytes]
        self.objects: Dict[str, List[int]] = {}
        self.bindings: Dict[str, _Binding] = {}


class _LogicalEdge:
    """Byte accounting of a serializing transport on one DAG edge."""

    __slots__ = ("transfers", "bytes_moved", "bytes_payload",
                 "object_count", "first_ns", "last_ns")

    def __init__(self):
        self.transfers = 0
        self.bytes_moved = 0
        self.bytes_payload = 0
        self.object_count = 0
        self.first_ns: Optional[int] = None
        self.last_ns: Optional[int] = None


def _amplification(moved: int, touched: int) -> Optional[float]:
    if touched <= 0:
        return None
    return round(moved / touched, 4)


class LineageTracker:
    """Accumulates page/byte provenance for one (or several) runs.

    Attach via ``hub.enable_lineage()``; every instrumentation site in
    mem/kernel/net/transfer reaches it through :func:`current_lineage`.
    All state is deterministic given the seeded simulation, so
    :meth:`report` is byte-identical across replays of the same run.
    """

    def __init__(self, hub=None):
        self._hub = hub
        self.clear()

    def clear(self) -> None:
        self._fids: Dict[str, _FidState] = {}
        #: (edge label, transport) -> logical byte log
        self._logical: Dict[Tuple[str, str], _LogicalEdge] = {}
        #: consumer space name -> live bindings (the touch fast path)
        self._watch: Dict[str, List[_Binding]] = {}
        #: ambient (edge label, transport) set by the coordinator
        self._edge: Optional[Tuple[str, str]] = None
        #: (transport, key) -> put bytes awaiting their first get
        self._pending_puts: Dict[Tuple[str, Any], int] = {}

    def _now(self) -> int:
        return self._hub.now() if self._hub is not None else 0

    # -- ambient DAG-edge context (set by the coordinator) -------------------

    def set_edge(self, label: Optional[str], transport: Optional[str]
                 ) -> Optional[Tuple[str, str]]:
        """Set the ambient edge; returns the previous value for restore."""
        previous = self._edge
        self._edge = (label, transport) if label is not None else None
        return previous

    def restore_edge(self, previous: Optional[Tuple[str, str]]) -> None:
        self._edge = previous

    # -- producer side -------------------------------------------------------

    def registered(self, fid: str, owner: str, pages: int,
                   vm_start: int, vm_end: int) -> None:
        """A ``register_mem`` pinned *pages* pages of *owner*'s space."""
        state = self._fids.get(fid)
        if state is None:
            self._fids[fid] = _FidState(fid, owner, pages, vm_start, vm_end,
                                        registered_at=self._now())
        else:
            state.owner = owner
            state.registered_pages = pages
            state.vm_start, state.vm_end = vm_start, vm_end

    def attach_objects(self, fid: str,
                       objects: Dict[str, Tuple[int, int]]) -> None:
        """Per-TypeTag ``{tag: (count, bytes)}`` object map of *fid*."""
        state = self._fid(fid)
        for tag, (count, nbytes) in objects.items():
            entry = state.objects.setdefault(tag, [0, 0])
            entry[0] += count
            entry[1] += nbytes

    def sent(self, fid: str, transport: str, metadata_bytes: int) -> None:
        """The producer shipped *fid*'s page-list token (control bytes)."""
        state = self._fid(fid)
        state.transport = transport
        state.metadata_bytes += metadata_bytes

    # -- consumer side -------------------------------------------------------

    def bound(self, fid: str, space: str, vm_start: int,
              vm_end: int) -> None:
        """An ``rmap`` mapped *fid* into consumer *space*."""
        state = self._fid(fid)
        binding = state.bindings.get(space)
        if binding is None:
            binding = state.bindings[space] = _Binding(fid, space,
                                                       vm_start, vm_end)
        else:
            binding.attempts += 1
            binding.vm_start, binding.vm_end = vm_start, vm_end
        if self._edge is not None:
            binding.edge, binding.transport = self._edge
        watching = self._watch.setdefault(space, [])
        if binding not in watching:
            watching.append(binding)
        binding.stamp(self._now())

    def vma_unmapped(self, space: str, vma_name: str) -> None:
        """The rmap'd VMA was unmapped; stop watching (stats persist)."""
        watching = self._watch.get(space)
        if not watching:
            return
        fid = _fid_of(vma_name)
        self._watch[space] = [b for b in watching if b.fid != fid]
        if not self._watch[space]:
            del self._watch[space]

    def page_pulled(self, vma_name: str, space: str, vpn: int, kind: str,
                    nbytes: int, rpc: bool = False) -> None:
        """One page materialized in the consumer's remote mapping.

        *kind* is ``demand`` / ``prefetch`` / ``zero_fill`` / ``shared``;
        *nbytes* is the physical bytes that crossed the fabric for it (0
        for zero-fill and same-machine shared mappings).  ``rpc=True``
        marks bytes that traveled the two-sided RPC path rather than a
        one-sided READ.
        """
        binding = self._binding(_fid_of(vma_name), space)
        binding.kinds[kind] = binding.kinds.get(kind, 0) + 1
        if nbytes:
            seen = binding.pulls.get(vpn, 0)
            if seen:
                binding.duplicate_pulls += 1
            binding.pulls[vpn] = seen + 1
            binding.bytes_moved += nbytes
            if rpc:
                binding.bytes_moved_rpc += nbytes
            if kind == "prefetch":
                binding.prefetched.add(vpn)
        binding.stamp(self._now())

    def pte_fetched(self, vma_name: str, space: str, fetches: int,
                    regions: int) -> None:
        """On-demand PTE metadata arrived (coalesced region spans)."""
        if not fetches and not regions:
            return
        binding = self._binding(_fid_of(vma_name), space)
        binding.pte_fetches += fetches
        binding.pte_regions += regions

    def touched(self, space: str, vaddr: int, length: int) -> None:
        """The consumer read/wrote *length* bytes at *vaddr*."""
        watching = self._watch.get(space)
        if not watching:
            return
        for binding in watching:
            if binding.vm_start <= vaddr < binding.vm_end:
                end = min(vaddr + length, binding.vm_end)
                accum = binding.touched
                addr = vaddr
                while addr < end:
                    vpn = addr >> _PAGE_SHIFT
                    page_end = min(end, (vpn + 1) << _PAGE_SHIFT)
                    seen = accum.get(vpn, 0)
                    if seen < PAGE_SIZE:
                        accum[vpn] = min(PAGE_SIZE,
                                         seen + (page_end - addr))
                    addr = page_end
                binding.stamp(self._now())
                return

    def cow_broken(self, space: str, vpn: int) -> None:
        """A consumer write diverged a CoW page into a private copy."""
        watching = self._watch.get(space)
        if not watching:
            return
        vaddr = vpn << _PAGE_SHIFT
        for binding in watching:
            if binding.vm_start <= vaddr < binding.vm_end:
                binding.cow_breaks += 1
                binding.stamp(self._now())
                return

    # -- serializing transports (logical bytes) ------------------------------

    def logical_transfer(self, transport: str, moved: int, payload: int,
                         objects: int = 0) -> None:
        """A serializing transport delivered *payload* bytes by moving
        *moved* bytes (inflation / double movement included)."""
        label = self._edge[0] if self._edge is not None else "?"
        log = self._logical.get((label, transport))
        if log is None:
            log = self._logical[(label, transport)] = _LogicalEdge()
        log.transfers += 1
        log.bytes_moved += moved
        log.bytes_payload += payload
        log.object_count += objects
        ts = self._now()
        if log.first_ns is None:
            log.first_ns = ts
        log.last_ns = ts

    def storage_put(self, transport: str, key: Any, nbytes: int) -> None:
        """Bytes written into shared storage, attributed at first get."""
        slot = (transport, key)
        self._pending_puts[slot] = self._pending_puts.get(slot, 0) + nbytes

    def storage_get(self, transport: str, key: Any, nbytes: int) -> None:
        """Bytes read back from storage; claims the matching put."""
        put = self._pending_puts.pop((transport, key), 0)
        self.logical_transfer(transport, moved=nbytes + put, payload=nbytes)

    # -- internals -----------------------------------------------------------

    def _fid(self, fid: str) -> _FidState:
        state = self._fids.get(fid)
        if state is None:
            state = self._fids[fid] = _FidState(fid)
        return state

    def _binding(self, fid: str, space: str) -> _Binding:
        state = self._fid(fid)
        binding = state.bindings.get(space)
        if binding is None:
            binding = state.bindings[space] = _Binding(fid, space, 0, 0)
            if self._edge is not None:
                binding.edge, binding.transport = self._edge
        return binding

    # -- report --------------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        """JSON-ready lineage report (deterministic; sorted keys)."""
        edges: Dict[str, Dict[str, Any]] = {}
        for label, transport in sorted(self._logical):
            log = self._logical[(label, transport)]
            edges[f"{label}@{transport}"] = {
                "kind": "logical",
                "transport": transport,
                "transfers": log.transfers,
                "bytes_moved": log.bytes_moved,
                "bytes_payload": log.bytes_payload,
                "bytes_touched": log.bytes_payload,
                "amplification": _amplification(log.bytes_moved,
                                                log.bytes_payload),
                "objects": {"serialized": {"count": log.object_count,
                                           "bytes": log.bytes_payload}},
                "window": {"first_ns": log.first_ns, "last_ns": log.last_ns},
            }
        for fid in sorted(self._fids):
            state = self._fids[fid]
            for space in sorted(state.bindings):
                binding = state.bindings[space]
                label = binding.edge or f"{state.owner}->{space}"
                transport = binding.transport or state.transport or "rmmap"
                self._merge_binding(edges, f"{label}@{transport}", transport,
                                    state, binding)
        totals = {"bytes_moved": 0, "bytes_moved_rpc": 0, "bytes_touched": 0,
                  "prefetch_waste_bytes": 0, "duplicate_pulls": 0}
        by_transport: Dict[str, Dict[str, int]] = {}
        for entry in edges.values():
            agg = by_transport.setdefault(
                entry["transport"],
                {"bytes_moved": 0, "bytes_moved_rpc": 0, "bytes_touched": 0,
                 "prefetch_waste_bytes": 0, "duplicate_pulls": 0})
            for tgt in (totals, agg):
                tgt["bytes_moved"] += entry["bytes_moved"]
                tgt["bytes_moved_rpc"] += entry.get("bytes_moved_rpc", 0)
                tgt["bytes_touched"] += entry["bytes_touched"]
                tgt["prefetch_waste_bytes"] += \
                    entry.get("prefetch_waste", {}).get("bytes", 0)
                tgt["duplicate_pulls"] += \
                    entry.get("pages", {}).get("duplicate_pulls", 0)
        unclaimed = sum(self._pending_puts.values())
        for (transport, _key), nbytes in self._pending_puts.items():
            totals["bytes_moved"] += nbytes
            if transport in by_transport:
                by_transport[transport]["bytes_moved"] += nbytes
        for agg in [totals] + list(by_transport.values()):
            agg["amplification"] = _amplification(agg["bytes_moved"],
                                                  agg["bytes_touched"])
        return {
            "schema": LINEAGE_SCHEMA,
            "page_size": PAGE_SIZE,
            "edges": {k: edges[k] for k in sorted(edges)},
            "by_transport": {k: by_transport[k]
                             for k in sorted(by_transport)},
            "totals": totals,
            "unclaimed_put_bytes": unclaimed,
        }

    @staticmethod
    def _merge_binding(edges: Dict[str, Dict[str, Any]], key: str,
                       transport: str, state: _FidState,
                       binding: _Binding) -> None:
        entry = edges.get(key)
        if entry is None:
            entry = edges[key] = {
                "kind": "pages",
                "transport": transport,
                "fids": [],
                "attempts": 0,
                "bytes_moved": 0,
                "bytes_moved_rpc": 0,
                "bytes_touched": 0,
                "bytes_payload": 0,
                "metadata_bytes": 0,
                "amplification": None,
                "pages": {"registered": 0, "pulled": 0, "demand": 0,
                          "prefetch": 0, "zero_fill": 0, "shared": 0,
                          "touched": 0, "duplicate_pulls": 0,
                          "cow_breaks": 0},
                "prefetch_waste": {"pages": 0, "bytes": 0, "pte_fetches": 0,
                                   "pte_regions_fetched": 0,
                                   "pte_regions_unused": 0},
                "objects": {},
                "window": {"first_ns": None, "last_ns": None},
            }
        touched_bytes = sum(min(v, PAGE_SIZE)
                            for v in binding.touched.values())
        waste_pages = sum(1 for vpn in binding.prefetched
                          if binding.touched.get(vpn, 0) == 0)
        regions_used = len({vpn // _REGION_PAGES for vpn in binding.pulls})
        entry["fids"] = sorted(set(entry["fids"]) | {binding.fid})
        entry["attempts"] += binding.attempts
        entry["bytes_moved"] += binding.bytes_moved
        entry["bytes_moved_rpc"] += binding.bytes_moved_rpc
        entry["bytes_touched"] += touched_bytes
        entry["metadata_bytes"] += state.metadata_bytes
        pages = entry["pages"]
        pages["registered"] += state.registered_pages
        pages["pulled"] += sum(binding.pulls.values())
        for kind in ("demand", "prefetch", "zero_fill", "shared"):
            pages[kind] += binding.kinds.get(kind, 0)
        pages["touched"] += len(binding.touched)
        pages["duplicate_pulls"] += binding.duplicate_pulls
        pages["cow_breaks"] += binding.cow_breaks
        waste = entry["prefetch_waste"]
        waste["pages"] += waste_pages
        waste["bytes"] += waste_pages * PAGE_SIZE
        waste["pte_fetches"] += binding.pte_fetches
        waste["pte_regions_fetched"] += binding.pte_regions
        waste["pte_regions_unused"] += max(0,
                                           binding.pte_regions - regions_used)
        for tag, (count, nbytes) in sorted(state.objects.items()):
            slot = entry["objects"].setdefault(tag,
                                               {"count": 0, "bytes": 0})
            slot["count"] += count
            slot["bytes"] += nbytes
        entry["amplification"] = _amplification(entry["bytes_moved"],
                                                entry["bytes_touched"])
        window = entry["window"]
        for attr, pick in (("first_ns", min), ("last_ns", max)):
            value = getattr(binding, attr)
            if value is not None:
                window[attr] = (value if window[attr] is None
                                else pick(window[attr], value))
