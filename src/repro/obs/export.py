"""Telemetry exporters: JSON, CSV, Prometheus text and Chrome traces.

The Chrome export targets the `trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
understood by Perfetto / ``chrome://tracing``:

* hub spans and (optionally) :class:`~repro.analysis.tracing.Tracer` spans
  become complete ``"X"`` events;
* counter/gauge time series become ``"C"`` counter tracks;
* structured events become instant ``"i"`` events.

Processes (``pid``) map to machines and threads (``tid``) to layers, with
``"M"`` metadata records naming both, so a trace opens as one row per
(machine, layer).  Host wall-clock metrics (``wall.`` prefix) are skipped,
making the export a deterministic function of the seeded run.
"""

from __future__ import annotations

import csv
import io
import json
import re
from typing import Any, Dict, List, Optional

from repro.obs.telemetry import Telemetry, WALL_PREFIX


def to_json(hub: Telemetry, deterministic: bool = False,
            indent: Optional[int] = 2, monitor=None) -> str:
    """The hub snapshot as a JSON document.

    ``monitor`` (a :class:`~repro.obs.monitor.FleetMonitor`) embeds the
    fleet view — windowed series, SLOs, the alert timeline — under a
    ``"monitor"`` key alongside the raw hub data.
    """
    snapshot = hub.snapshot(deterministic=deterministic)
    if monitor is not None:
        snapshot["monitor"] = monitor.snapshot()
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def write_json(hub: Telemetry, path: str,
               deterministic: bool = False, monitor=None) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_json(hub, deterministic=deterministic,
                         monitor=monitor))
        fh.write("\n")


def to_csv(hub: Telemetry, deterministic: bool = False) -> str:
    """Counters, gauges and histogram summaries as flat CSV rows."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["kind", "machine", "layer", "name", "field", "value"])
    for kind, (machine, layer, name), value in hub.iter_metrics():
        if deterministic and name.startswith(WALL_PREFIX):
            continue
        if kind == "histogram":
            for fname, fvalue in (("count", value.count),
                                  ("sum", value.sum),
                                  ("min", value.min), ("max", value.max),
                                  ("p50", value.quantile(0.5)),
                                  ("p99", value.quantile(0.99))):
                writer.writerow([kind, machine, layer, name, fname,
                                 fvalue])
        else:
            writer.writerow([kind, machine, layer, name, "value", value])
    return out.getvalue()


def write_csv(hub: Telemetry, path: str,
              deterministic: bool = False) -> None:
    with open(path, "w", encoding="utf-8", newline="") as fh:
        fh.write(to_csv(hub, deterministic=deterministic))


# -- Prometheus / OpenMetrics text ---------------------------------------------

#: Prometheus metric names allow ``[a-zA-Z0-9_:]`` only.
_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(layer: str, name: str, suffix: str = "") -> str:
    """``repro_<layer>_<name><suffix>`` with invalid characters folded
    to ``_`` (dots and dashes in hub names become underscores)."""
    metric = _PROM_INVALID.sub("_", f"repro_{layer}_{name}{suffix}")
    if metric[0].isdigit():
        metric = "_" + metric
    return metric


def _prom_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition rules."""
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def to_prom_text(hub: Telemetry, deterministic: bool = True) -> str:
    """The hub's counters, gauges and histograms in the Prometheus /
    OpenMetrics text exposition format.

    Hub counters become ``<name>_total`` counter samples, gauges map
    one-to-one, and log2-binned histograms become cumulative
    ``_bucket{le=...}`` series (bucket bounds are the histogram's bin
    upper bounds) plus ``_sum``/``_count``.  Machines become a
    ``machine`` label and the hub layer a ``layer`` label, so one scrape
    carries the whole simulated cluster.  ``deterministic=True``
    (default) drops host wall-clock (``wall.``) metrics, making the text
    a pure function of the seeded run.  Ends with the OpenMetrics
    ``# EOF`` terminator.
    """
    groups: Dict[tuple, List[tuple]] = {}
    for kind, (machine, layer, name), value in hub.iter_metrics():
        if deterministic and name.startswith(WALL_PREFIX):
            continue
        groups.setdefault((layer, name, kind), []).append((machine, value))
    lines: List[str] = []
    for layer, name, kind in sorted(groups):
        rows = sorted(groups[(layer, name, kind)], key=lambda r: r[0])
        family = _prom_name(layer, name)
        lines.append(f"# TYPE {family} {kind}")
        for machine, value in rows:
            labels = (f'machine="{_prom_label_value(machine)}",'
                      f'layer="{_prom_label_value(layer)}"')
            if kind == "counter":
                lines.append(f"{family}_total{{{labels}}} {value}")
            elif kind == "gauge":
                lines.append(f"{family}{{{labels}}} {value}")
            else:
                cumulative = 0
                for b in sorted(value.bins):
                    cumulative += value.bins[b]
                    le = value.bin_bounds(b)[1]
                    lines.append(
                        f'{family}_bucket{{{labels},le="{le}"}} '
                        f"{cumulative}")
                lines.append(f'{family}_bucket{{{labels},le="+Inf"}} '
                             f"{value.count}")
                lines.append(f"{family}_sum{{{labels}}} {value.sum}")
                lines.append(f"{family}_count{{{labels}}} {value.count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_prom(hub: Telemetry, path: str,
               deterministic: bool = True) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_prom_text(hub, deterministic=deterministic))


# -- Chrome trace-event format -------------------------------------------------

def _us(ns: int) -> float:
    """Trace-event timestamps are microseconds."""
    return ns / 1000.0


def to_chrome_trace(hub: Telemetry, tracer=None,
                    monitor=None) -> Dict[str, Any]:
    """The hub (plus an optional span Tracer) as a trace-event dict.

    ``tracer`` may be an :class:`~repro.analysis.tracing.Tracer` whose
    finished spans are merged in under the ``platform`` layer — the paper
    figures' existing span source rides along in the same timeline.
    ``monitor`` (a :class:`~repro.obs.monitor.FleetMonitor`) adds its
    alert transitions as process-scoped instant events on a ``cluster``
    row, so SLO firings line up against spans in Perfetto.  Events are
    sorted by timestamp (stable on insertion order), so ``ts`` is
    monotone across the whole file.
    """
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    meta: List[Dict[str, Any]] = []

    def pid_of(machine: str) -> int:
        pid = pids.get(machine)
        if pid is None:
            pid = pids[machine] = len(pids) + 1
            meta.append({"ph": "M", "name": "process_name", "pid": pid,
                         "tid": 0, "args": {"name": machine}})
        return pid

    def tid_of(machine: str, layer: str) -> int:
        key = (machine, layer)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = sum(1 for k in tids if k[0] == machine) + 1
            meta.append({"ph": "M", "name": "thread_name",
                         "pid": pid_of(machine), "tid": tid,
                         "args": {"name": layer}})
        return tid

    body: List[Dict[str, Any]] = []

    def flow(flow_id: int, parent_loc: Dict[str, Any],
             child_loc: Dict[str, Any]) -> None:
        """One parent→child arrow: a "s"/"f" pair sharing *flow_id*."""
        body.append({"ph": "s", "name": "causal", "cat": "flow",
                     "id": flow_id, **parent_loc})
        body.append({"ph": "f", "name": "causal", "cat": "flow",
                     "bp": "e", "id": flow_id, **child_loc})

    by_id: Dict[int, Dict[str, Any]] = {}
    for span in hub.spans:
        sid = span.get("span_id")
        if sid is not None:
            by_id[sid] = span

    for span in hub.spans:
        machine, layer = span["machine"], span["layer"]
        args = dict(span["attributes"])
        if span.get("span_id") is not None:
            args["span_id"] = span["span_id"]
        if span.get("parent_id") is not None:
            args["parent_id"] = span["parent_id"]
        if span.get("trace_id") is not None:
            args["trace_id"] = span["trace_id"]
        body.append({
            "ph": "X", "name": span["name"], "cat": layer,
            "pid": pid_of(machine), "tid": tid_of(machine, layer),
            "ts": _us(span["start_ns"]),
            "dur": _us(span["end_ns"] - span["start_ns"]),
            "args": args,
        })
        parent = by_id.get(span.get("parent_id"))
        if parent is not None:
            # anchor the arrow tail inside the parent's interval
            tail_ts = min(max(span["start_ns"], parent["start_ns"]),
                          parent["end_ns"])
            flow(span["span_id"],
                 {"pid": pid_of(parent["machine"]),
                  "tid": tid_of(parent["machine"], parent["layer"]),
                  "ts": _us(tail_ts)},
                 {"pid": pid_of(machine), "tid": tid_of(machine, layer),
                  "ts": _us(span["start_ns"])})

    if tracer is not None:
        tracer_spans = tracer.finished_spans()
        by_name = {}
        for span in tracer_spans:
            by_name.setdefault(span.name, span)
        # flow ids for tracer arrows live above the hub span-id range
        next_flow = max(by_id, default=0) + 1
        for span in tracer_spans:
            args = dict(span.attributes)
            if getattr(span, "trace_id", None) is not None:
                args["trace_id"] = span.trace_id
            body.append({
                "ph": "X", "name": span.name, "cat": "platform.trace",
                "pid": pid_of("coordinator"),
                "tid": tid_of("coordinator", "platform.trace"),
                "ts": _us(span.start_ns),
                "dur": _us(span.end_ns - span.start_ns),
                "args": args,
            })
            parent = by_name.get(span.parent)
            if parent is not None and parent.finished:
                tail_ts = min(max(span.start_ns, parent.start_ns),
                              parent.end_ns)
                loc = {"pid": pid_of("coordinator"),
                       "tid": tid_of("coordinator", "platform.trace")}
                flow(next_flow, {**loc, "ts": _us(tail_ts)},
                     {**loc, "ts": _us(span.start_ns)})
                next_flow += 1

    for key in sorted(hub.series):
        machine, layer, name = key
        if name.startswith(WALL_PREFIX):
            continue
        track = f"{layer}/{name}"
        for ts, value in hub.series[key].samples:
            body.append({
                "ph": "C", "name": track, "cat": layer,
                "pid": pid_of(machine), "tid": 0,
                "ts": _us(ts), "args": {name: value},
            })

    for event in hub.events:
        machine, layer = event["machine"], event["layer"]
        body.append({
            "ph": "i", "s": "t", "name": event["name"], "cat": layer,
            "pid": pid_of(machine), "tid": tid_of(machine, layer),
            "ts": _us(event["ts"]), "args": dict(event["attributes"]),
        })

    if monitor is not None:
        loc = {"pid": pid_of("cluster"),
               "tid": tid_of("cluster", "obs.monitor")}
        for alert in monitor.alerts:
            args = alert.to_dict()
            body.append({"ph": "i", "s": "p", "name": "alert.fired",
                         "cat": "obs.monitor",
                         "ts": _us(alert.fired_ns), "args": args,
                         **loc})
            if alert.cleared_ns is not None:
                body.append({"ph": "i", "s": "p",
                             "name": "alert.cleared",
                             "cat": "obs.monitor",
                             "ts": _us(alert.cleared_ns), "args": args,
                             **loc})

    body.sort(key=lambda e: e["ts"])
    return {"traceEvents": meta + body,
            "displayTimeUnit": "ms",
            "otherData": {"source": "repro.obs",
                          "clock_domain": "simulated-ns"}}


def to_chrome_trace_json(hub: Telemetry, tracer=None,
                         monitor=None) -> str:
    return json.dumps(to_chrome_trace(hub, tracer=tracer,
                                      monitor=monitor), sort_keys=True)


def write_chrome_trace(hub: Telemetry, path: str, tracer=None,
                       monitor=None) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_chrome_trace_json(hub, tracer=tracer,
                                      monitor=monitor))
        fh.write("\n")
