"""Service-level objectives and multi-window burn-rate semantics.

An :class:`SLO` classifies every finished invocation as *good* or *bad*
and grants an error budget (``1 - objective``).  The monitor evaluates
each SLO with the multi-window burn-rate rule: let

    ``burn(w) = bad_fraction(w) / error_budget``

over a sliding window ``w`` of simulated time.  An alert **fires** when
both the long- and the short-window burn rates reach
``burn_rate_threshold`` (the long window proves the budget is really
being spent, the short window proves it is *still* being spent — no
alerts for long-recovered blips), and **clears** when the short-window
burn drops back below the threshold.  Evaluation is event-driven — the
state machine advances only when an invocation finishes, at that
invocation's simulated timestamp — so alert timelines are a pure
function of the event stream and the monitor never has to schedule
simulator work.

Two kinds of objective are expressed with one dataclass:

* **availability** (``latency_threshold_ns is None``): an invocation is
  good iff it completed;
* **latency** (``latency_threshold_ns`` set): an invocation is good iff
  it completed *and* finished within the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.units import ms, us


@dataclass(frozen=True)
class SLO:
    """One objective over the stream of finished invocations."""

    #: Stable identifier, used in alert events and reports.
    name: str
    #: Target good fraction, e.g. ``0.999`` → 0.1 % error budget.
    objective: float
    #: ``None`` → availability SLO; else good requires
    #: ``latency_ns <= latency_threshold_ns``.
    latency_threshold_ns: Optional[int] = None
    #: Long burn-rate window (simulated ns).
    long_window_ns: int = ms(400)
    #: Short burn-rate window (simulated ns); must divide into the long
    #: window's span for shared-counter evaluation.
    short_window_ns: int = ms(50)
    #: Fire when both windows burn at ≥ this multiple of budget rate.
    burn_rate_threshold: float = 10.0

    def __post_init__(self):
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.short_window_ns > self.long_window_ns:
            raise ValueError("short window must not exceed long window")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective

    def is_good(self, latency_ns: Optional[int], ok: bool) -> bool:
        """Classify one finished invocation."""
        if not ok:
            return False
        if self.latency_threshold_ns is None:
            return True
        return latency_ns is not None \
            and latency_ns <= self.latency_threshold_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "objective": self.objective,
            "latency_threshold_ns": self.latency_threshold_ns,
            "long_window_ns": self.long_window_ns,
            "short_window_ns": self.short_window_ns,
            "burn_rate_threshold": self.burn_rate_threshold,
        }


#: Stock objectives for the simulated fleet: §4.5-style availability and
#: a p-latency guardrail sized to the paper's sub-millisecond transfers.
DEFAULT_SLOS = (
    SLO(name="availability-999", objective=0.999),
    SLO(name="latency-e2e-5ms", objective=0.99,
        latency_threshold_ns=ms(5)),
)

__all__ = ["SLO", "DEFAULT_SLOS", "ms", "us"]
