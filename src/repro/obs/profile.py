"""Causal profiling over the telemetry hub's span tree.

The coordinator threads ``trace_id`` / ``parent_id`` through every span it
(or a substrate layer, via deferred ops) records, so one workflow
invocation's simulated nanoseconds form a single rooted tree:

    workflow -> invocation -> function instance -> phase -> transport op
                                                         -> kernel syscall
                                                         -> net verb / RPC

This module walks that tree three ways:

* :func:`critical_path` extracts the end-to-end critical path as a list of
  segments that *partition* the root interval exactly — their durations sum
  to the run's end-to-end time by construction.  Within a span, time not
  covered by any child is the span's *self* time; time covered by a child
  belongs to (the deepest such) child.
* :func:`attribute` rolls up self vs. wait time per ``(machine, layer,
  name)`` over the whole tree (wait = time blocked on children: transfers
  waiting on verbs, functions waiting on faults).
* :func:`folded_stacks` emits the tree as folded stacks
  (``frame;frame;frame value`` — the format ``inferno``/``flamegraph.pl``
  and speedscope ingest), one frame per ``layer/name``, weighted by self
  time in nanoseconds.

Everything here is a pure function of recorded spans; instance indices
(``#3`` suffixes) are normalized away for aggregation so parallel instances
of one function fold together.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.telemetry import Telemetry

#: ``name#3`` / ``name#3~retry`` instance suffixes fold into ``name``.
_INSTANCE_SUFFIX = re.compile(r"#\d+(~retry)?$")


def normalize_name(name: str) -> str:
    """Strip per-instance suffixes so parallel instances aggregate."""
    return _INSTANCE_SUFFIX.sub("", name)


@dataclass
class SpanNode:
    """One span in the causal tree."""

    machine: str
    layer: str
    name: str
    start_ns: int
    end_ns: int
    span_id: int
    parent_id: Optional[int]
    trace_id: Optional[str]
    attributes: Dict[str, Any] = field(default_factory=dict)
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def frame(self) -> str:
        """The flamegraph frame label for this span."""
        return f"{self.layer}/{normalize_name(self.name)}"

    def location(self) -> Tuple[str, str, str]:
        return (self.machine, self.layer, normalize_name(self.name))

    def walk(self):
        """Yield this node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


def trace_ids(hub: Telemetry) -> List[str]:
    """Distinct trace ids recorded by *hub*, sorted."""
    return sorted({s.get("trace_id") for s in hub.spans
                   if s.get("trace_id") is not None})


def sampling_diagnostic(hub: Telemetry,
                        trace_id: Optional[str] = None) -> Optional[str]:
    """Explain an absent trace when span sampling is the likely culprit.

    Returns a message naming the knobs (``span_sample_every``,
    ``max_spans``, :meth:`~repro.obs.telemetry.Telemetry.pin_trace`)
    when the hub *saw* more spans than it kept — i.e. sampling or the
    span cap plausibly dropped the spans the caller is looking for —
    and ``None`` when the hub kept everything it saw (the absence then
    has some other cause, e.g. no telemetry at all).
    """
    if hub.spans_seen <= len(hub.spans):
        return None
    dropped = hub.spans_seen - len(hub.spans)
    subject = (f"trace {trace_id!r} was" if trace_id is not None
               else "the requested spans were")
    return (f"{subject} not retained: the hub saw {hub.spans_seen} "
            f"spans but kept only {len(hub.spans)} "
            f"(span_sample_every={hub.span_sample_every}, "
            f"{dropped} sampled out or over max_spans); lower "
            f"span_sample_every / raise max_spans, or "
            f"hub.pin_trace(trace_id) before the run records it")


def build_span_tree(hub: Telemetry,
                    trace_id: Optional[str] = None) -> SpanNode:
    """The rooted span tree of one trace.

    With a single recorded trace, ``trace_id`` may be omitted.  Spans
    whose parent is missing become roots; the primary root is the longest
    (earliest on ties) and any stray root fully inside it is adopted as a
    child, so prewarm or concurrent-invocation spans never corrupt the
    measured tree — they carry different trace ids and are filtered out.
    """
    ids = trace_ids(hub)
    if trace_id is None:
        if not ids:
            hint = sampling_diagnostic(hub)
            if hint is not None:
                raise ValueError(hint)
            raise ValueError("no causal spans recorded; run with telemetry "
                             "installed (repro.api.run(telemetry=True))")
        if len(ids) > 1:
            raise ValueError(f"multiple traces recorded ({ids}); "
                             f"pass trace_id")
        trace_id = ids[0]
    nodes: Dict[int, SpanNode] = {}
    for s in hub.spans:
        if s.get("trace_id") != trace_id:
            continue
        node = SpanNode(machine=s["machine"], layer=s["layer"],
                        name=s["name"], start_ns=s["start_ns"],
                        end_ns=s["end_ns"], span_id=s["span_id"],
                        parent_id=s.get("parent_id"), trace_id=trace_id,
                        attributes=dict(s.get("attributes") or {}))
        nodes[node.span_id] = node
    roots: List[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.parent_id)
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    if not roots:
        hint = sampling_diagnostic(hub, trace_id)
        if hint is not None:
            raise ValueError(hint)
        raise ValueError(f"trace {trace_id!r} has no spans")
    roots.sort(key=lambda r: (-(r.end_ns - r.start_ns), r.start_ns,
                              r.span_id))
    primary = roots[0]
    for stray in roots[1:]:
        if primary.start_ns <= stray.start_ns \
                and stray.end_ns <= primary.end_ns:
            primary.children.append(stray)
    for node in nodes.values():
        node.children.sort(key=lambda c: (c.start_ns, c.end_ns, c.span_id))
    return primary


# -- critical path -------------------------------------------------------------


@dataclass
class PathSegment:
    """One critical-path segment: *node* was the deepest span covering
    ``[start_ns, end_ns)``."""

    node: SpanNode
    start_ns: int
    end_ns: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


def critical_path(root: SpanNode) -> List[PathSegment]:
    """The end-to-end critical path as segments partitioning the root.

    Walks backward from the root's end: within ``[lo, hi]`` the child
    ending latest (before the cursor) carries the path; the gap between
    its end and the cursor is the parent's own time; recurse into the
    child and continue from its start.  Segments are returned in time
    order and always sum exactly to the root's duration.
    """
    segments: List[PathSegment] = []

    def walk(node: SpanNode, lo: int, hi: int) -> None:
        cursor = hi
        while cursor > lo:
            best = None
            best_key = None
            for child in node.children:
                if child.start_ns >= cursor or child.end_ns <= lo:
                    continue
                key = (min(child.end_ns, cursor), child.start_ns,
                       child.span_id)
                if best is None or key > best_key:
                    best, best_key = child, key
            if best is None:
                segments.append(PathSegment(node, lo, cursor))
                return
            child_end = min(best.end_ns, cursor)
            if child_end < cursor:
                segments.append(PathSegment(node, child_end, cursor))
            child_lo = max(best.start_ns, lo)
            walk(best, child_lo, child_end)
            cursor = child_lo

    walk(root, root.start_ns, root.end_ns)
    segments.reverse()
    return segments


# -- attribution ---------------------------------------------------------------


def _union_ns(intervals: List[Tuple[int, int]]) -> int:
    """Total length covered by the (possibly overlapping) intervals."""
    total = 0
    hi = None
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if hi is None or start >= hi:
            total += end - start
            hi = end
        elif end > hi:
            total += end - hi
            hi = end
    return total


def self_time_ns(node: SpanNode) -> int:
    """*node*'s duration minus the union of its children's intervals."""
    busy = _union_ns([(max(c.start_ns, node.start_ns),
                       min(c.end_ns, node.end_ns))
                      for c in node.children])
    return max(0, node.duration_ns - busy)


def attribute(root: SpanNode) -> List[Dict[str, Any]]:
    """Self vs. wait time per ``(machine, layer, name)`` over the tree.

    ``self_ns`` is time the span spent with no child running (its own
    work); ``wait_ns`` is time covered by children (blocked on them).
    Rows are ranked by self time.
    """
    acc: Dict[Tuple[str, str, str], Dict[str, int]] = {}
    for node in root.walk():
        self_ns = self_time_ns(node)
        slot = acc.setdefault(node.location(),
                              {"self_ns": 0, "wait_ns": 0,
                               "total_ns": 0, "count": 0})
        slot["self_ns"] += self_ns
        slot["wait_ns"] += node.duration_ns - self_ns
        slot["total_ns"] += node.duration_ns
        slot["count"] += 1
    rows = [{"machine": m, "layer": lyr, "name": n, **slot}
            for (m, lyr, n), slot in acc.items()]
    rows.sort(key=lambda r: (-r["self_ns"], r["machine"], r["layer"],
                             r["name"]))
    return rows


#: A root-to-node path of normalized ``(machine, layer, name)`` locations.
LocationPath = Tuple[Tuple[str, str, str], ...]


def path_table(root: SpanNode) -> Dict[LocationPath, Dict[str, int]]:
    """Aggregate self/wait/total time per root-to-node *location path*.

    Parallel instances of one function normalize onto the same path, so
    two runs of the same workload produce alignable tables even when
    instance counts differ — this is the join key the run-differ
    (:mod:`repro.obs.diff`) uses.
    """
    acc: Dict[LocationPath, Dict[str, int]] = {}

    def visit(node: SpanNode, prefix: LocationPath) -> None:
        path = prefix + (node.location(),)
        self_ns = self_time_ns(node)
        slot = acc.setdefault(path, {"self_ns": 0, "wait_ns": 0,
                                     "total_ns": 0, "count": 0})
        slot["self_ns"] += self_ns
        slot["wait_ns"] += node.duration_ns - self_ns
        slot["total_ns"] += node.duration_ns
        slot["count"] += 1
        for child in node.children:
            visit(child, path)

    visit(root, ())
    return acc


# -- flamegraph ----------------------------------------------------------------


def folded_stacks(root: SpanNode) -> str:
    """The tree as folded stacks (``a;b;c value`` lines, value = self ns).

    Loadable by ``inferno-flamegraph``, ``flamegraph.pl`` and speedscope.
    Sibling instances of one function fold into the same frame; lines are
    sorted, so same-seed runs produce byte-identical output.
    """
    acc: Dict[Tuple[str, ...], int] = {}

    def visit(node: SpanNode, prefix: Tuple[str, ...]) -> None:
        stack = prefix + (node.frame,)
        self_ns = self_time_ns(node)
        if self_ns > 0:
            acc[stack] = acc.get(stack, 0) + self_ns
        for child in node.children:
            visit(child, stack)

    visit(root, ())
    lines = [f"{';'.join(stack)} {value}"
             for stack, value in sorted(acc.items())]
    return "\n".join(lines) + ("\n" if lines else "")


def parse_folded(text: str) -> Dict[Tuple[str, ...], int]:
    """Parse folded stacks back into ``{stack_tuple: value}`` (testing and
    tooling aid; also validates the format round-trips)."""
    out: Dict[Tuple[str, ...], int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, value = line.rpartition(" ")
        if not stack or not value.isdigit():
            raise ValueError(f"malformed folded line: {line!r}")
        key = tuple(stack.split(";"))
        out[key] = out.get(key, 0) + int(value)
    return out


# -- the ranked report ---------------------------------------------------------

REPORT_SCHEMA_VERSION = 1


def critical_path_report(hub: Telemetry,
                         trace_id: Optional[str] = None) -> Dict[str, Any]:
    """A JSON-ready bottleneck report for one trace.

    ``path`` lists the critical-path segments in time order (their
    ``duration_ns`` sum to ``total_ns`` exactly); ``bottlenecks`` ranks
    critical-path time by ``(machine, layer, name)``; ``attribution``
    ranks whole-tree self/wait time the same way.
    """
    root = build_span_tree(hub, trace_id=trace_id)
    segments = critical_path(root)
    by_loc: Dict[Tuple[str, str, str], int] = {}
    for seg in segments:
        loc = seg.node.location()
        by_loc[loc] = by_loc.get(loc, 0) + seg.duration_ns
    total = root.duration_ns
    bottlenecks = [
        {"machine": m, "layer": lyr, "name": n, "path_ns": ns,
         "share": round(ns / total, 6) if total else 0.0}
        for (m, lyr, n), ns in sorted(by_loc.items(),
                                      key=lambda kv: (-kv[1], kv[0]))]
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "trace_id": root.trace_id,
        "total_ns": total,
        "root": {"machine": root.machine, "layer": root.layer,
                 "name": root.name, "start_ns": root.start_ns,
                 "end_ns": root.end_ns},
        "layers": sorted({n.layer for n in root.walk()}),
        "span_count": sum(1 for _ in root.walk()),
        "path": [
            {"machine": seg.node.machine, "layer": seg.node.layer,
             "name": seg.node.name, "start_ns": seg.start_ns,
             "end_ns": seg.end_ns, "duration_ns": seg.duration_ns}
            for seg in segments],
        "bottlenecks": bottlenecks,
        "attribution": attribute(root),
    }


def render_report(report: Dict[str, Any], top: int = 12) -> str:
    """The report as a ranked text table."""
    total = max(1, report["total_ns"])
    lines = [
        f"critical path of {report['trace_id']} — "
        f"{report['total_ns'] / 1e6:.3f} ms end-to-end, "
        f"{len(report['path'])} segments over "
        f"{len(report['layers'])} layers "
        f"({', '.join(report['layers'])})",
        "",
        f"{'share':>7}  {'path ms':>10}  location",
    ]
    for row in report["bottlenecks"][:top]:
        lines.append(f"{row['path_ns'] / total:>6.1%}  "
                     f"{row['path_ns'] / 1e6:>10.3f}  "
                     f"{row['machine']}:{row['layer']}/{row['name']}")
    rest = report["bottlenecks"][top:]
    if rest:
        rest_ns = sum(r["path_ns"] for r in rest)
        lines.append(f"{rest_ns / total:>6.1%}  {rest_ns / 1e6:>10.3f}  "
                     f"({len(rest)} more)")
    return "\n".join(lines)
