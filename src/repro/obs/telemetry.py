"""The cross-layer telemetry hub.

A :class:`Telemetry` hub collects counters, gauges, log-binned histograms,
structured events and finished spans from every layer of the simulated
stack, keyed by ``(machine, layer, name)``.  Like the span
:class:`~repro.analysis.tracing.Tracer`, it is a pure *clock observer*: no
hub operation ever charges a ledger or advances simulated time, so an
instrumented run produces byte-identical Fig 11 T/N/R totals.

Instrumentation points follow one pattern::

    from repro.obs import current as obs_hub
    ...
    hub = obs_hub()
    if hub is not None:
        hub.count(machine, "net.rdma", "reads")

With no hub installed (the default) the cost is one global read and a
``None`` check.  Installation is process-global and explicit —
:func:`install` / :func:`uninstall`, or the :func:`capture` context
manager — mirroring how tracing is opt-in.

Determinism: every recorded value derives from the simulated clock and the
seeded simulation, except metrics whose name carries the ``wall.`` prefix
(host wall-clock measurements).  :meth:`Telemetry.snapshot` with
``deterministic=True`` filters those, so same seed ⇒ identical snapshot.

Causal spans: every span carries ``span_id`` / ``parent_id`` /
``trace_id`` fields so a run's spans form one rooted tree that
:mod:`repro.obs.profile` can walk.  Substrate layers (kernel, net) run
synchronously and *charge* ledgers rather than advancing the clock, so
their spans are recorded as deferred *ops* — offsets into the ledger's
pending charge — and materialize into absolute intervals when the
enclosing simulation process drains that ledger (:meth:`Telemetry.op`,
:meth:`Telemetry.commit_ops`).  Like every other hub operation the op
path never touches a ledger or the event queue.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: (machine, layer, name) — the key every metric is filed under.
MetricKey = Tuple[str, str, str]

#: Prefix marking metrics measured against the host wall clock; they are
#: excluded from deterministic snapshots and the Chrome-trace export.
WALL_PREFIX = "wall."


class Histogram:
    """A log2-binned histogram over non-negative integers (ns domain).

    Bin ``b`` holds values whose bit length is ``b``: bin 0 is exactly 0,
    bin 1 is {1}, bin 2 is [2, 3], bin ``b`` is [2**(b-1), 2**b - 1].
    Integer-only arithmetic keeps recording exact and deterministic.

    Storage is a preallocated flat array indexed by bit length (64 bins
    cover every int64 nanosecond value), so :meth:`record` is two integer
    ops and an array store — no dict hashing, no allocation.  ``bins``
    stays the sparse-dict view the exporters and tests consume.
    """

    __slots__ = ("_bins", "count", "sum", "min", "max")

    #: int64 ns values have bit_length <= 63; the array grows on demand
    #: for anything wider.
    _PREALLOC = 64

    def __init__(self):
        self._bins: List[int] = [0] * self._PREALLOC
        self.count = 0
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def record(self, value: int) -> None:
        v = int(value)
        if v < 0:
            v = 0
        b = v.bit_length()
        bins = self._bins
        if b >= len(bins):
            bins.extend([0] * (b + 1 - len(bins)))
        bins[b] += 1
        self.count += 1
        self.sum += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v

    @property
    def bins(self) -> Dict[int, int]:
        """Sparse ``{bit_length: count}`` view of the non-empty bins."""
        return {b: n for b, n in enumerate(self._bins) if n}

    @staticmethod
    def bin_bounds(b: int) -> Tuple[int, int]:
        """Inclusive [lo, hi] value range of bin *b*."""
        if b <= 0:
            return (0, 0)
        return (1 << (b - 1), (1 << b) - 1)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> int:
        """Approximate quantile: the upper bound of the covering bin."""
        if not self.count:
            return 0
        target = max(1, int(q * self.count + 0.999999))
        seen = 0
        for b in sorted(self.bins):
            seen += self.bins[b]
            if seen >= target:
                return self.bin_bounds(b)[1]
        return self.bin_bounds(max(self.bins))[1]

    def to_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "sum": self.sum,
                "min": self.min, "max": self.max,
                "bins": {str(b): n for b, n in sorted(self.bins.items())}}


class _Series:
    """A decimated (ts, value) time series for one counter/gauge.

    Keeps at most *cap* samples: when full, every other sample is dropped
    and the sampling stride doubles.  Decimation depends only on the
    number of updates, never on wall time, so it is deterministic.
    """

    __slots__ = ("samples", "stride", "cap", "_updates")

    def __init__(self, cap: int = 512):
        self.samples: List[Tuple[int, int]] = []
        self.stride = 1
        self.cap = cap
        self._updates = 0

    def add(self, ts: int, value: int) -> None:
        self._updates += 1
        if self._updates % self.stride:
            return
        self.samples.append((ts, value))
        if len(self.samples) >= self.cap:
            self.samples = self.samples[::2]
            self.stride *= 2


class Telemetry:
    """Hub carrying all telemetry of one (or several sequential) runs.

    All mutating methods are cheap and allocation-light; none touches a
    ledger or the event queue.  ``clock`` is attached by the simulation
    engine (see :meth:`attach_clock`); before any engine exists it reads 0.

    ``event_sample_every`` / ``span_sample_every`` keep only every Nth
    event/span record (1 = keep all, the default).  Sampling affects
    *storage* only: listeners still see every event, ``events_seen`` /
    ``spans_seen`` keep the exact totals, and counters/gauges/histograms
    are never sampled — so deterministic aggregates are unchanged while
    long fleet runs stop allocating one dict per event.
    """

    __slots__ = ("counters", "gauges", "histograms", "events", "spans",
                 "series", "max_events", "max_spans", "ring",
                 "dropped_events", "dropped_spans", "records",
                 "events_seen", "spans_seen", "event_sample_every",
                 "span_sample_every", "pinned_traces", "timelines",
                 "lineage", "_series_cap", "_clock", "_clock_owner",
                 "_next_span_id", "_listeners", "_ops")

    def __init__(self, max_events: int = 20_000,
                 series_cap: int = 512,
                 max_spans: Optional[int] = None,
                 ring: bool = False,
                 event_sample_every: int = 1,
                 span_sample_every: int = 1):
        self.counters: Dict[MetricKey, int] = {}
        self.gauges: Dict[MetricKey, int] = {}
        self.histograms: Dict[MetricKey, Histogram] = {}
        self.events: List[Dict[str, Any]] = []
        self.spans: List[Dict[str, Any]] = []
        self.series: Dict[MetricKey, _Series] = {}
        self.max_events = max_events
        self.max_spans = max_spans
        #: ``ring=True`` turns the event/span caps into ring buffers for
        #: long fleet runs: the *oldest* record is evicted (and counted
        #: dropped) instead of the newest being refused, so the hub holds
        #: the most recent window of a million-request simulation in
        #: bounded memory.  The default keeps the original drop-newest
        #: semantics and byte-identical exports.
        self.ring = ring
        self.dropped_events = 0
        self.dropped_spans = 0
        #: total recording calls (counters+gauges+histograms+events+spans)
        #: — the numerator of the bench harness's hub records/sec metric
        self.records = 0
        #: exact event/span totals, independent of sampling and caps
        self.events_seen = 0
        self.spans_seen = 0
        if event_sample_every < 1 or span_sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.event_sample_every = event_sample_every
        self.span_sample_every = span_sample_every
        #: trace ids with full span retention: spans carrying one of
        #: these ids bypass ``span_sample_every`` and the (non-ring)
        #: ``max_spans`` cap.  ``spans_seen`` stays exact either way.
        #: Fed by the fleet monitor's exemplar capture (worst-k /
        #: median-band invocations) via :meth:`pin_trace`.
        self.pinned_traces: set = set()
        #: optional bounded resource-saturation series recorder
        #: (:class:`repro.obs.timeline.TimelineRecorder`); ``None`` until
        #: :meth:`enable_timelines` — the counter/gauge hot paths pay one
        #: attribute check when disabled.
        self.timelines = None
        #: optional page-provenance tracker
        #: (:class:`repro.obs.lineage.LineageTracker`); ``None`` until
        #: :meth:`enable_lineage` — instrumentation sites pay one
        #: attribute check when disabled.
        self.lineage = None
        self._series_cap = series_cap
        self._clock: Callable[[], int] = lambda: 0
        self._clock_owner: Optional[object] = None
        self._next_span_id = 1
        # live streaming consumers (e.g. repro.obs.monitor.FleetMonitor):
        # called with every event dict, including ones the storage cap
        # drops, so monitoring long runs never loses samples
        self._listeners: List[Callable[[Dict[str, Any]], None]] = []
        # deferred ops, keyed by id(ledger); the entry pins the ledger
        # object so the id cannot be recycled while ops are pending
        self._ops: Dict[int, Dict[str, Any]] = {}

    # -- clock ---------------------------------------------------------------

    def attach_clock(self, engine) -> None:
        """Follow *engine*'s simulated clock (idempotent per engine).

        Experiments that build several engines sequentially re-attach as
        each engine starts running; timestamps always come from the engine
        currently driving the simulation.
        """
        if self._clock_owner is engine:
            return
        self._clock_owner = engine
        self._clock = lambda: engine.now

    def now(self) -> int:
        return self._clock()

    # -- recording -----------------------------------------------------------

    def count(self, machine: str, layer: str, name: str,
              value: int = 1) -> None:
        """Add *value* to a monotonically growing counter."""
        key = (machine, layer, name)
        counters = self.counters
        total = counters.get(key, 0) + int(value)
        counters[key] = total
        self.records += 1
        ts = self._clock()
        series = self.series.get(key)
        if series is None:
            series = self.series[key] = _Series(self._series_cap)
        series.add(ts, total)
        if self.timelines is not None:
            self.timelines.record(key, ts, total)

    def gauge(self, machine: str, layer: str, name: str,
              value: int) -> None:
        """Set a point-in-time gauge."""
        key = (machine, layer, name)
        value = int(value)
        self.gauges[key] = value
        self.records += 1
        ts = self._clock()
        series = self.series.get(key)
        if series is None:
            series = self.series[key] = _Series(self._series_cap)
        series.add(ts, value)
        if self.timelines is not None:
            self.timelines.record(key, ts, value)

    def gauge_max(self, machine: str, layer: str, name: str,
                  value: int) -> None:
        """Raise a high-water-mark gauge (no-op when below the mark)."""
        key = (machine, layer, name)
        value = int(value)
        self.records += 1
        if value > self.gauges.get(key, -(1 << 62)):
            self.gauges[key] = value
            self._sample(key, value)
            if self.timelines is not None:
                self.timelines.record(key, self._clock(), value)

    def observe(self, machine: str, layer: str, name: str,
                value: int) -> None:
        """Record *value* into a log-binned histogram."""
        key = (machine, layer, name)
        self.records += 1
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = Histogram()
        hist.record(value)

    def add_listener(self,
                     listener: Callable[[Dict[str, Any]], None]) -> None:
        """Stream every future event dict to *listener*.

        Listeners must be pure observers (no ledger, no clock, no event
        queue); they see events even when the storage cap drops them.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(
            self, listener: Callable[[Dict[str, Any]], None]) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def event(self, machine: str, layer: str, name: str,
              **attributes: Any) -> None:
        """Record one timestamped structured event.

        Listeners always see every event; the stored copy is subject to
        ``event_sample_every`` and the ``max_events`` cap.
        """
        self.records += 1
        self.events_seen += 1
        record = {"ts": self._clock(), "machine": machine,
                  "layer": layer, "name": name,
                  "attributes": attributes}
        for listener in self._listeners:
            listener(record)
        if self.event_sample_every > 1 \
                and (self.events_seen - 1) % self.event_sample_every:
            return
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            if not self.ring:
                return
            del self.events[0]
        self.events.append(record)

    def new_span_id(self) -> int:
        """Mint a process-unique, deterministic span id."""
        sid = self._next_span_id
        self._next_span_id += 1
        return sid

    def span(self, machine: str, layer: str, name: str, start_ns: int,
             end_ns: int, span_id: Optional[int] = None,
             parent_id: Optional[int] = None,
             trace_id: Optional[str] = None,
             **attributes: Any) -> int:
        """Record one finished interval (same shape as Tracer spans).

        ``span_id`` defaults to a fresh id; ``parent_id`` links the span
        into its causal parent and ``trace_id`` names the rooted tree it
        belongs to (one tree per workflow invocation).  Returns the
        span's id so callers can parent children under it.
        """
        self.records += 1
        self.spans_seen += 1
        if span_id is None:
            span_id = self.new_span_id()
        pinned = trace_id is not None and trace_id in self.pinned_traces
        if not pinned and self.span_sample_every > 1 \
                and (self.spans_seen - 1) % self.span_sample_every:
            return span_id
        if self.max_spans is not None \
                and len(self.spans) >= self.max_spans:
            if self.ring:
                self.dropped_spans += 1
                del self.spans[0]
            elif not pinned:
                # pinned exemplar spans bypass the drop-newest cap so
                # retained traces stay complete
                self.dropped_spans += 1
                return span_id
        self.spans.append({"machine": machine, "layer": layer,
                           "name": name, "start_ns": int(start_ns),
                           "end_ns": int(end_ns), "span_id": span_id,
                           "parent_id": parent_id, "trace_id": trace_id,
                           "attributes": attributes})
        return span_id

    # -- exemplar pinning & saturation timelines ------------------------------

    def pin_trace(self, trace_id: str) -> None:
        """Retain every *future* span of *trace_id* regardless of
        ``span_sample_every`` and the (non-ring) ``max_spans`` cap.

        Pinning is storage-only: ``spans_seen`` stays the exact total and
        no simulated state is touched, so pinning preserves the
        bit-identical run contract.  Emitters that want complete exemplar
        trees must record the pin-triggering event *before* the spans it
        should retain (the fleet shard layer emits ``invocation.done``
        first, then the invocation's spans).
        """
        self.pinned_traces.add(trace_id)

    def enable_timelines(self, bucket_ns: int = 1_000_000,
                         max_buckets: int = 256,
                         max_series: int = 1024):
        """Attach (or return) the resource-saturation timeline recorder.

        Every subsequent counter/gauge update also lands in a bounded
        :class:`~repro.obs.timeline.Timeline` keyed by the metric key —
        the input of :mod:`repro.obs.triage`'s saturation correlation.
        Idempotent; returns the recorder.
        """
        if self.timelines is None:
            from repro.obs.timeline import TimelineRecorder
            self.timelines = TimelineRecorder(bucket_ns=bucket_ns,
                                              max_buckets=max_buckets,
                                              max_series=max_series)
        return self.timelines

    def enable_lineage(self):
        """Attach (or return) the page-provenance lineage tracker.

        Every subsequent state transfer is tracked page by page —
        registration, remote mapping, pulls, CoW divergence, consumer
        access — feeding :meth:`repro.obs.lineage.LineageTracker.report`.
        Idempotent; returns the tracker.  Pure observer: enabling lineage
        never perturbs the simulation.
        """
        if self.lineage is None:
            from repro.obs.lineage import LineageTracker
            self.lineage = LineageTracker(hub=self)
        return self.lineage

    # -- deferred ops (substrate layers) -------------------------------------

    def _op_state(self, ledger) -> Dict[str, Any]:
        state = self._ops.get(id(ledger))
        if state is None:
            state = self._ops[id(ledger)] = {"ledger": ledger,
                                             "stack": [], "top": []}
        return state

    def op_begin(self, machine: str, layer: str, name: str, ledger,
                 **attributes: Any) -> Dict[str, Any]:
        """Open a deferred op spanning *ledger* charges until ``op_end``.

        The op's extent is recorded as ``[pending-at-begin,
        pending-at-end]`` offsets into the ledger's undrained charge;
        nested ``op``/``op_begin`` calls against the same ledger become
        children.  Pair with :meth:`op_end` in a ``finally`` block.
        """
        state = self._op_state(ledger)
        frame = {"machine": machine, "layer": layer, "name": name,
                 "start_off": ledger.pending, "end_off": None,
                 "attributes": attributes, "children": []}
        state["stack"].append(frame)
        return frame

    def op_end(self, frame: Dict[str, Any], ledger) -> None:
        """Close a deferred op opened by :meth:`op_begin`."""
        state = self._op_state(ledger)
        frame["end_off"] = ledger.pending
        stack = state["stack"]
        if any(f is frame for f in stack):
            while stack[-1] is not frame:  # close leaked nested frames
                self.op_end(stack[-1], ledger)
            stack.pop()
        parent = stack[-1] if stack else None
        target = parent["children"] if parent is not None else state["top"]
        target.append(frame)

    def op(self, machine: str, layer: str, name: str, ledger,
           cost_ns: int, **attributes: Any) -> None:
        """Record one leaf op of *cost_ns* ending at the ledger's current
        pending charge (call immediately after the matching
        ``ledger.charge``)."""
        state = self._op_state(ledger)
        end = ledger.pending
        frame = {"machine": machine, "layer": layer, "name": name,
                 "start_off": max(0, end - int(cost_ns)), "end_off": end,
                 "attributes": attributes, "children": []}
        stack = state["stack"]
        target = stack[-1]["children"] if stack else state["top"]
        target.append(frame)

    def commit_ops(self, ledger, start_ns: int, window_ns: int,
                   parent_id: Optional[int] = None,
                   trace_id: Optional[str] = None) -> None:
        """Materialize *ledger*'s pending ops into absolute spans.

        Call right after ``ns = ledger.drain()`` with the drain instant
        and the drained ``window_ns``: an op at offsets ``[a, b]``
        becomes a span over ``[start_ns + a, start_ns + b]``.  Ops whose
        offsets fall outside the window (stale survivors of an
        uncommitted drain) are clipped or dropped.
        """
        state = self._ops.pop(id(ledger), None)
        if state is None:
            return
        for frame in state["stack"]:  # leaked frames: close at window end
            if frame["end_off"] is None:
                frame["end_off"] = window_ns
        roots = state["top"] + state["stack"]

        def emit(frame: Dict[str, Any], parent: Optional[int]) -> None:
            start = min(frame["start_off"], window_ns)
            end = min(frame["end_off"], window_ns)
            if start >= window_ns and end - start <= 0 and window_ns > 0:
                return  # entirely outside the drained window
            sid = self.span(frame["machine"], frame["layer"],
                            frame["name"], start_ns + start,
                            start_ns + end, parent_id=parent,
                            trace_id=trace_id, **frame["attributes"])
            for child in frame["children"]:
                emit(child, sid)

        for frame in roots:
            emit(frame, parent_id)

    def discard_ops(self, ledger) -> None:
        """Drop *ledger*'s pending ops (failed attempt / retry path)."""
        self._ops.pop(id(ledger), None)

    def _sample(self, key: MetricKey, value: int) -> None:
        series = self.series.get(key)
        if series is None:
            series = self.series[key] = _Series(self._series_cap)
        series.add(self._clock(), value)

    # -- introspection -------------------------------------------------------

    def layers(self) -> List[str]:
        """Distinct layers that recorded anything."""
        seen = {k[1] for k in self.counters}
        seen.update(k[1] for k in self.gauges)
        seen.update(k[1] for k in self.histograms)
        seen.update(e["layer"] for e in self.events)
        seen.update(s["layer"] for s in self.spans)
        return sorted(seen)

    def counter(self, machine: str, layer: str, name: str) -> int:
        return self.counters.get((machine, layer, name), 0)

    def total(self, layer: str, name: str) -> int:
        """Sum one counter name across machines within a layer."""
        return sum(v for (_m, lyr, n), v in self.counters.items()
                   if lyr == layer and n == name)

    def iter_metrics(self) -> Iterator[Tuple[str, MetricKey, Any]]:
        """(kind, key, value) over counters, gauges and histograms."""
        for key in sorted(self.counters):
            yield "counter", key, self.counters[key]
        for key in sorted(self.gauges):
            yield "gauge", key, self.gauges[key]
        for key in sorted(self.histograms):
            yield "histogram", key, self.histograms[key]

    def snapshot(self, deterministic: bool = False) -> Dict[str, Any]:
        """A JSON-ready dict of everything the hub holds.

        ``deterministic=True`` drops ``wall.``-prefixed metrics so the
        result is a pure function of the seeded simulation.
        """
        def keep(key: MetricKey) -> bool:
            return not (deterministic and key[2].startswith(WALL_PREFIX))

        return {
            "counters": [
                {"machine": m, "layer": lyr, "name": n, "value": v}
                for (m, lyr, n), v in sorted(self.counters.items())
                if keep((m, lyr, n))],
            "gauges": [
                {"machine": m, "layer": lyr, "name": n, "value": v}
                for (m, lyr, n), v in sorted(self.gauges.items())
                if keep((m, lyr, n))],
            "histograms": [
                {"machine": m, "layer": lyr, "name": n,
                 **self.histograms[(m, lyr, n)].to_dict()}
                for (m, lyr, n) in sorted(self.histograms)
                if keep((m, lyr, n))],
            "events": list(self.events),
            "spans": list(self.spans),
            "dropped_events": self.dropped_events,
            "dropped_spans": self.dropped_spans,
            "events_seen": self.events_seen,
            "spans_seen": self.spans_seen,
        }

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.events.clear()
        self.spans.clear()
        self.series.clear()
        self.dropped_events = 0
        self.dropped_spans = 0
        self.records = 0
        self.events_seen = 0
        self.spans_seen = 0
        self.pinned_traces.clear()
        if self.timelines is not None:
            self.timelines.clear()
        if self.lineage is not None:
            self.lineage.clear()
        self._ops.clear()
        self._next_span_id = 1


# -- the process-global current hub -------------------------------------------

_current: Optional[Telemetry] = None


def current() -> Optional[Telemetry]:
    """The installed hub, or None (the no-telemetry fast path)."""
    return _current


def install(hub: Optional[Telemetry] = None) -> Telemetry:
    """Make *hub* (or a fresh one) the process-global current hub."""
    global _current
    _current = hub if hub is not None else Telemetry()
    return _current


def uninstall() -> Optional[Telemetry]:
    """Remove and return the current hub."""
    global _current
    hub, _current = _current, None
    return hub


@contextmanager
def capture(hub: Optional[Telemetry] = None):
    """Install *hub* for the duration of a ``with`` block.

    Re-entrant and exception-safe: the previously installed hub
    (whatever it was — an outer ``capture``, an explicit :func:`install`,
    or nothing) is restored in a ``finally``, so a façade run inside a
    CLI-wide capture reuses or shadows the outer hub without clobbering
    it, and no hub can leak past the block even when the body raises or
    itself calls :func:`install` / :func:`uninstall`.  Nesting the *same*
    hub is fine (fleet runs that drive chaos drills do exactly that);
    each level restores its own predecessor on the way out.
    """
    global _current
    previous = _current
    active = hub if hub is not None else Telemetry()
    _current = active
    try:
        yield active
    finally:
        # unconditional restore: even if the body installed a different
        # hub (or uninstalled ours), the pre-capture state comes back
        _current = previous
